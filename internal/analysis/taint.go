package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the determinism-taint engine behind the detflow analyzer:
// a flow-sensitive, context-insensitive dataflow pass that tracks values
// produced by nondeterministic sources (wall clock, global math/rand,
// map iteration order, select arrival order, pointer→uintptr conversions)
// through assignments, expressions, and cross-package call summaries, and
// records where such a value reaches a determinism sink (fingerprint
// computation, the stats layer, snapshot state). Summaries are cached on
// PkgFacts like the allocation/blocking facts, so queries cross package
// boundaries without leaving the stdlib — the taint analogue of the
// x/tools fact export.
//
// The engine tracks explicit value flow only: taint moves through
// assignments, operators, composite literals, and call results/arguments,
// not through control dependence (a branch on a tainted condition does
// not taint the branches) and not across goroutines (a plain channel
// receive is untainted; multi-case select arrival order IS a source). The
// runtime fingerprint determinism gate remains the backstop for those.

// TaintOrigin describes the nondeterministic source a tainted value came
// from: the site in the originating function plus a human-readable chain.
// Order marks order-class taint (map iteration), which the engine's
// sanitizers (map re-keying, sorting) can clear; hard taint they cannot.
type TaintOrigin struct {
	Pos   token.Pos
	Desc  string
	Order bool
}

// SinkHit is one local determinism violation: a nondeterministically
// tainted value reaching a sink inside the summarized function.
type SinkHit struct {
	Pos    token.Pos // the offending expression/assignment in this function
	Sink   string    // which sink class was reached
	Origin *TaintOrigin
}

// TaintSummary is one function's exported taint behaviour.
type TaintSummary struct {
	// Returns is non-nil when some result of the function may carry a
	// value from a nondeterministic source reached in its own body or in
	// a callee.
	Returns *TaintOrigin
	// ParamFlow[i] reports whether parameter i may flow into a result.
	ParamFlow []bool
	// ParamSink[i] is nonempty when parameter i reaches a determinism
	// sink inside the function (directly or through a callee); the string
	// names the sink.
	ParamSink []string
	// Hits are taint→sink flows entirely local to the function: a source
	// in this body (or a tainted callee result) reaching a sink in this
	// body. The detflow analyzer reports them for the packages it visits.
	Hits []SinkHit
}

// TaintOf returns fn's taint summary, computing and caching it on first
// use. Standard-library and bodiless functions get table-driven behaviour:
// known nondeterministic sources return taint, everything else is treated
// as a pure passthrough (any tainted argument taints the results), which
// keeps flows like strconv.FormatInt(now, 10) visible. Cycles in the call
// graph are cut by returning an empty summary for the in-progress
// function — recursive flows are under-approximated, not diverged on.
func (f *Facts) TaintOf(fn *types.Func) *TaintSummary {
	if fn == nil {
		return &TaintSummary{}
	}
	pf := f.factsFor(fn)
	sum := (*FuncSummary)(nil)
	if pf != nil {
		sum = pf.Funcs[fn]
	}
	if pf == nil || sum == nil || sum.Decl == nil {
		return stdTaint(fn)
	}
	if ts, ok := pf.taint[fn]; ok {
		return ts
	}
	walk := f.loader.taintWalk
	if walk[fn] {
		return &TaintSummary{} // cycle: cut with the empty summary
	}
	walk[fn] = true
	defer delete(walk, fn)
	ts := computeTaint(f, pf, sum)
	pf.taint[fn] = ts
	return ts
}

// stdTaint models functions without a loadable body.
func stdTaint(fn *types.Func) *TaintSummary {
	if desc, ok := NondetSource(fn); ok {
		return &TaintSummary{Returns: &TaintOrigin{Desc: desc}}
	}
	sig, _ := fn.Type().(*types.Signature)
	n := 0
	if sig != nil {
		n = sig.Params().Len()
	}
	flow := make([]bool, n)
	for i := range flow {
		flow[i] = true // passthrough: tainted arguments taint the results
	}
	return &TaintSummary{ParamFlow: flow, ParamSink: make([]string, n)}
}

// ---- source and sink tables --------------------------------------------

// nondetTimeFuncs are package time functions whose results depend on the
// wall clock.
var nondetTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
}

// nondetRandFuncs are the math/rand (and v2) package-level draws from the
// process-global, scheduling-shared generator. Methods on an explicitly
// seeded *rand.Rand are deterministic and not listed.
var nondetRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint": true, "Uint32": true, "Uint32N": true, "Uint64": true,
	"Uint64N": true, "UintN": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
}

// NondetSource reports whether calling fn yields a nondeterministic value
// (the detflow source table).
func NondetSource(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return "", false // methods: only package-level sources are listed
	}
	switch pkg.Path() {
	case "time":
		if nondetTimeFuncs[fn.Name()] {
			return "wall clock time." + fn.Name(), true
		}
	case "math/rand", "math/rand/v2":
		if nondetRandFuncs[fn.Name()] {
			return "global rand." + fn.Name(), true
		}
	case "crypto/rand":
		return "crypto/rand." + fn.Name(), true
	}
	return "", false
}

// SinkCall reports whether fn is a determinism sink: feeding it a
// nondeterministic value forks fingerprints, stats, or snapshots (the
// detflow sink table).
func SinkCall(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	name := fn.Name()
	switch pkg.Path() {
	case "crypto/sha256", "crypto/sha1", "crypto/sha512", "crypto/md5":
		if strings.HasPrefix(name, "Sum") {
			return "hash/fingerprint input (" + pkg.Name() + "." + name + ")", true
		}
	case "hash/crc32", "hash/crc64", "hash/fnv", "hash/maphash":
		if name == "Checksum" || name == "Update" || name == "ChecksumIEEE" {
			return "hash/fingerprint input (" + pkg.Name() + "." + name + ")", true
		}
	case "encoding/gob":
		if name == "Encode" || name == "EncodeValue" {
			return "gob snapshot encoding", true
		}
	}
	if !strings.HasPrefix(pkg.Path(), "repro") {
		return "", false
	}
	if strings.Contains(strings.ToLower(name), "fingerprint") {
		return "fingerprint computation (" + funcName(fn) + ")", true
	}
	switch pkg.Path() {
	case "repro/internal/snapshot":
		if name == "Save" {
			return "snapshot capture (snapshot.Save)", true
		}
	case "repro/internal/stats":
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Params().Len() > 0 && ast.IsExported(name) {
			return "stats recording (" + funcName(fn) + ")", true
		}
	}
	return "", false
}

// IsStateStruct reports whether t (after pointer stripping) is a module
// checkpoint state struct: an exported named struct defined under the
// repro module whose name is "State" or ends in "State". Writes into such
// structs are snapshot sinks for detflow and coverage subjects for
// statecover. Unexported *State types (in-memory bookkeeping that never
// meets a gob encoder) are deliberately excluded.
func IsStateStruct(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasPrefix(obj.Pkg().Path(), "repro") {
		return false
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return false
	}
	return ast.IsExported(obj.Name()) &&
		(obj.Name() == "State" || strings.HasSuffix(obj.Name(), "State"))
}

// isStatsType reports whether t belongs to the stats layer.
func isStatsType(t types.Type) bool {
	named := namedOf(t)
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "repro/internal/stats"
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// ---- the flow engine ---------------------------------------------------

// Taint masks are bitsets: bit 0 marks a hard nondeterministic source
// (clock, global rand, select arrival, addresses), bit 63 marks ORDER
// nondeterminism (map iteration), and bit i+1 marks parameter i. Running
// the engine once with all bits seeded yields both the intrinsic-return
// and the per-parameter flow facts.
//
// Order taint gets its own bit because it has sanitizers hard taint does
// not: storing into a map by key is order-insensitive (the copy idiom
// st.Counts[k] = v re-keys every element, so iteration order cannot reach
// the result), and passing a slice to package sort/slices re-determinizes
// it (the collect-then-sort idiom maporder sanctions). A wall-clock value
// survives both; a map-order value survives neither.
const (
	nondetBit   uint64 = 1
	mapOrderBit uint64 = 1 << 63
	taintBits          = nondetBit | mapOrderBit
)

// maxTrackedParams caps the parameters tracked per function (bits 1..62).
const maxTrackedParams = 61

type taintFlow struct {
	facts *Facts
	pf    *PkgFacts
	fn    *types.Func
	decl  *ast.FuncDecl

	mask   map[types.Object]uint64
	origin map[types.Object]*TaintOrigin

	nparams   int
	retMask   uint64
	retOrigin *TaintOrigin

	// sinks enables sink recording (the single post-fixpoint pass).
	sinks     bool
	paramSink []string
	hits      []SinkHit

	selectDepth int // >0 inside a multi-case select: assignments gain bit 0
	selectPos   token.Pos
	changed     bool
}

// computeTaint runs the engine to fixpoint over one function body, then a
// final pass with sink recording on.
func computeTaint(facts *Facts, pf *PkgFacts, sum *FuncSummary) *TaintSummary {
	sig, _ := sum.Fn.Type().(*types.Signature)
	n := 0
	if sig != nil {
		n = sig.Params().Len()
	}
	if n > maxTrackedParams {
		n = maxTrackedParams
	}
	tf := &taintFlow{
		facts:     facts,
		pf:        pf,
		fn:        sum.Fn,
		decl:      sum.Decl,
		mask:      map[types.Object]uint64{},
		origin:    map[types.Object]*TaintOrigin{},
		nparams:   n,
		paramSink: make([]string, n),
	}
	for i := 0; i < n; i++ {
		tf.mask[sig.Params().At(i)] = 1 << uint(i+1)
	}
	for iter := 0; iter < 10; iter++ {
		tf.changed = false
		tf.stmt(sum.Decl.Body)
		if !tf.changed {
			break
		}
	}
	tf.sinks = true
	tf.stmt(sum.Decl.Body)

	ts := &TaintSummary{
		ParamFlow: make([]bool, n),
		ParamSink: tf.paramSink,
		Hits:      dedupeHits(tf.hits),
	}
	for i := 0; i < n; i++ {
		ts.ParamFlow[i] = tf.retMask&(1<<uint(i+1)) != 0
	}
	if tf.retMask&taintBits != 0 {
		ts.Returns = tf.retOrigin
		if ts.Returns == nil {
			ts.Returns = &TaintOrigin{Desc: "nondeterministic value", Order: tf.retMask&nondetBit == 0}
		}
	}
	return ts
}

func dedupeHits(hits []SinkHit) []SinkHit {
	seen := map[token.Pos]bool{}
	out := hits[:0]
	for _, h := range hits {
		if !seen[h.Pos] {
			seen[h.Pos] = true
			out = append(out, h)
		}
	}
	return out
}

// setObj merges mask bits into obj, recording the first nondet origin.
func (tf *taintFlow) setObj(obj types.Object, m uint64, o *TaintOrigin) {
	if obj == nil {
		return
	}
	if tf.selectDepth > 0 {
		m |= nondetBit
		if o == nil {
			o = &TaintOrigin{Pos: tf.selectPos, Desc: "select case arrival order"}
		}
	}
	if m&^tf.mask[obj] != 0 {
		tf.mask[obj] |= m
		tf.changed = true
	}
	if m&taintBits != 0 && o != nil && tf.origin[obj] == nil {
		tf.origin[obj] = o
	}
}

// clearOrder drops order-class taint from the root object of e — the
// sort-sanitizer backend. Clears are not counted as fixpoint changes; the
// statement-ordered walk applies them where they occur.
func (tf *taintFlow) clearOrder(e ast.Expr) {
	info := tf.pf.Pkg.Info
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.ObjectOf(x); obj != nil {
				tf.mask[obj] &^= mapOrderBit
			}
			return
		case *ast.SelectorExpr:
			if _, ok := info.Selections[x]; !ok {
				return
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return
		}
	}
}

// sinkValue routes a tainted value arriving at a sink: nondet taint
// becomes a hit, parameter taint becomes a ParamSink fact.
func (tf *taintFlow) sinkValue(pos token.Pos, sink string, m uint64, o *TaintOrigin) {
	if !tf.sinks || m == 0 {
		return
	}
	if m&taintBits != 0 {
		if o == nil {
			o = &TaintOrigin{Pos: pos, Desc: "nondeterministic value"}
		}
		tf.hits = append(tf.hits, SinkHit{Pos: pos, Sink: sink, Origin: o})
	}
	for i := 0; i < tf.nparams; i++ {
		if m&(1<<uint(i+1)) != 0 && tf.paramSink[i] == "" {
			tf.paramSink[i] = sink
		}
	}
}

// exprTaint evaluates an expression's taint mask and best origin.
func (tf *taintFlow) exprTaint(e ast.Expr) (uint64, *TaintOrigin) {
	info := tf.pf.Pkg.Info
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		return tf.mask[obj], tf.origin[obj]
	case *ast.ParenExpr:
		return tf.exprTaint(e.X)
	case *ast.StarExpr:
		return tf.exprTaint(e.X)
	case *ast.TypeAssertExpr:
		return tf.exprTaint(e.X)
	case *ast.IndexExpr:
		m1, o1 := tf.exprTaint(e.X)
		m2, o2 := tf.exprTaint(e.Index)
		return m1 | m2, firstOrigin(o1, o2)
	case *ast.SliceExpr:
		return tf.exprTaint(e.X)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel != nil {
			return tf.exprTaint(e.X) // field or method value: base taint
		}
		return 0, nil // package-qualified identifier
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			// Plain channel receive: the value is whatever was sent;
			// cross-goroutine flow is out of scope (select IS a source).
			return 0, nil
		}
		return tf.exprTaint(e.X)
	case *ast.BinaryExpr:
		m1, o1 := tf.exprTaint(e.X)
		m2, o2 := tf.exprTaint(e.Y)
		return m1 | m2, firstOrigin(o1, o2)
	case *ast.CompositeLit:
		var m uint64
		var o *TaintOrigin
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			em, eo := tf.exprTaint(el)
			m |= em
			o = firstOrigin(o, eo)
		}
		if tf.sinks && IsStateStruct(info.TypeOf(e)) {
			tf.sinkValue(e.Pos(), "snapshot state (composite literal)", m, o)
		}
		return m, o
	case *ast.CallExpr:
		return tf.callTaint(e)
	case *ast.FuncLit:
		return 0, nil
	}
	return 0, nil
}

func firstOrigin(a, b *TaintOrigin) *TaintOrigin {
	if a != nil {
		return a
	}
	return b
}

// callTaint models one call (or conversion): source table, callee summary
// propagation, sink table, and pointer→uintptr conversions.
func (tf *taintFlow) callTaint(call *ast.CallExpr) (uint64, *TaintOrigin) {
	info := tf.pf.Pkg.Info

	// Type conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return 0, nil
		}
		m, o := tf.exprTaint(call.Args[0])
		if isUintptr(tv.Type) && isPointerish(info.TypeOf(call.Args[0])) {
			o = &TaintOrigin{Pos: call.Pos(),
				Desc: "pointer-to-uintptr conversion (address-dependent value) at " + relPosition(tf.pf.Pkg.Fset.Position(call.Pos()))}
			return m | nondetBit, o
		}
		return m, o
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "len", "cap", "min", "max":
				var m uint64
				var o *TaintOrigin
				for _, a := range call.Args {
					am, ao := tf.exprTaint(a)
					m |= am
					o = firstOrigin(o, ao)
				}
				return m, o
			}
			return 0, nil
		}
	}

	// Argument and receiver masks (evaluated once, reused below).
	argMask := make([]uint64, len(call.Args))
	argOrigin := make([]*TaintOrigin, len(call.Args))
	for i, a := range call.Args {
		argMask[i], argOrigin[i] = tf.exprTaint(a)
	}
	var recvMask uint64
	var recvOrigin *TaintOrigin
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s != nil {
			recvMask, recvOrigin = tf.exprTaint(sel.X)
		}
	}

	callee := CalleeFunc(info, call)
	if callee == nil {
		// Func-value call: conservative passthrough of args + the value.
		m, o := tf.exprTaint(call.Fun)
		for i := range argMask {
			m |= argMask[i]
			o = firstOrigin(o, argOrigin[i])
		}
		return m, o
	}

	if desc, ok := NondetSource(callee); ok {
		return nondetBit, &TaintOrigin{Pos: call.Pos(),
			Desc: desc + " at " + relPosition(tf.pf.Pkg.Fset.Position(call.Pos()))}
	}

	sum := tf.facts.TaintOf(callee)

	// Sink checks: the curated call table, then the callee's param-sink
	// facts (a sink buried one or more calls deep).
	if tf.sinks {
		if desc, ok := SinkCall(callee); ok {
			for i := range argMask {
				tf.sinkValue(call.Args[i].Pos(), desc, argMask[i], argOrigin[i])
			}
			tf.sinkValue(call.Pos(), desc, recvMask, recvOrigin)
		}
		for i := range argMask {
			idx := paramIndex(i, len(sum.ParamSink))
			if idx >= 0 && sum.ParamSink[idx] != "" {
				tf.sinkValue(call.Args[i].Pos(),
					sum.ParamSink[idx]+" via "+funcName(callee), argMask[i], argOrigin[i])
			}
		}
	}

	// Result taint: intrinsic callee taint, flowing parameters, receiver.
	var m uint64
	var o *TaintOrigin
	if sum.Returns != nil {
		if sum.Returns.Order {
			m |= mapOrderBit
		} else {
			m |= nondetBit
		}
		o = &TaintOrigin{Pos: call.Pos(), Desc: sum.Returns.Desc + " via " + funcName(callee), Order: sum.Returns.Order}
	}
	for i := range argMask {
		idx := paramIndex(i, len(sum.ParamFlow))
		if idx >= 0 && sum.ParamFlow[idx] {
			m |= argMask[i]
			o = firstOrigin(o, argOrigin[i])
		}
	}
	m |= recvMask
	o = firstOrigin(o, recvOrigin)
	return m, o
}

// paramIndex maps argument position i onto a summary slot, folding
// variadic overflow onto the last parameter.
func paramIndex(i, n int) int {
	if n == 0 {
		return -1
	}
	if i >= n {
		return n - 1
	}
	return i
}

// isSortCall recognizes calls into package sort or slices — the
// sanctioned determinizers for collect-then-sort.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	path := pn.Imported().Path()
	return path == "sort" || path == "slices"
}

func isUintptr(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uintptr
}

func isPointerish(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// assign routes a tainted value into an lvalue: identifiers take the mask
// directly, field/index/deref writes taint the root object and trip the
// state/stats sink checks.
func (tf *taintFlow) assign(lhs ast.Expr, m uint64, o *TaintOrigin) {
	info := tf.pf.Pkg.Info
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		tf.setObj(info.ObjectOf(l), m, o)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[l]; ok && sel != nil {
			base := info.TypeOf(l.X)
			if tf.sinks {
				if IsStateStruct(base) {
					tf.sinkValue(l.Pos(), "snapshot state field "+fieldPath(base, l.Sel.Name), m, o)
				} else if isStatsType(base) {
					tf.sinkValue(l.Pos(), "stats field "+fieldPath(base, l.Sel.Name), m, o)
				}
			}
		}
		tf.assignRoot(l.X, m, o)
	case *ast.IndexExpr:
		if t := info.TypeOf(l.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				// Keyed insertion into a map re-keys the element: iteration
				// order cannot reach the result, so order taint stops here.
				m &^= mapOrderBit
			}
		}
		tf.assignRoot(l.X, m, o)
	case *ast.StarExpr:
		tf.assignRoot(l.X, m, o)
	}
}

// assignRoot taints the base object of a compound lvalue (x.f = v taints
// x), so later reads of the container observe the taint.
func (tf *taintFlow) assignRoot(e ast.Expr, m uint64, o *TaintOrigin) {
	info := tf.pf.Pkg.Info
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			tf.setObj(info.ObjectOf(x), m, o)
			return
		case *ast.SelectorExpr:
			if _, ok := info.Selections[x]; !ok {
				return // package-qualified: don't track globals
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return
		}
	}
}

func fieldPath(base types.Type, field string) string {
	if n := namedOf(base); n != nil {
		return n.Obj().Name() + "." + field
	}
	return field
}

// stmt walks one statement, updating the flow state in source order.
func (tf *taintFlow) stmt(s ast.Stmt) {
	info := tf.pf.Pkg.Info
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			tf.stmt(st)
		}
	case *ast.ExprStmt:
		tf.exprTaint(s.X)
		if call, ok := s.X.(*ast.CallExpr); ok && isSortCall(info, call) {
			// Collect-then-sort: sorting re-determinizes order taint.
			for _, a := range call.Args {
				tf.clearOrder(a)
			}
		}
	case *ast.AssignStmt:
		if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
			m, o := tf.exprTaint(s.Rhs[0])
			for _, l := range s.Lhs {
				tf.assign(l, m, o)
			}
			return
		}
		for i, l := range s.Lhs {
			if i < len(s.Rhs) {
				m, o := tf.exprTaint(s.Rhs[i])
				if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
					// x += y keeps x's taint and adds y's.
					om, oo := tf.exprTaint(l)
					m |= om
					o = firstOrigin(o, oo)
				}
				tf.assign(l, m, o)
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					m, o := tf.exprTaint(vs.Values[i])
					tf.setObj(info.ObjectOf(name), m, o)
				} else if len(vs.Values) == 1 && len(vs.Names) > 1 {
					m, o := tf.exprTaint(vs.Values[0])
					tf.setObj(info.ObjectOf(name), m, o)
				}
			}
		}
	case *ast.IncDecStmt:
		// x++ preserves x's taint; nothing flows.
	case *ast.RangeStmt:
		m, o := tf.exprTaint(s.X)
		if t := info.TypeOf(s.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				m |= mapOrderBit
				o = &TaintOrigin{Pos: s.Pos(), Order: true,
					Desc: "map iteration order at " + relPosition(tf.pf.Pkg.Fset.Position(s.Pos()))}
			}
		}
		if s.Key != nil {
			tf.assign(s.Key, m, o)
		}
		if s.Value != nil {
			tf.assign(s.Value, m, o)
		}
		tf.stmt(s.Body)
	case *ast.IfStmt:
		tf.stmt(s.Init)
		tf.exprTaint(s.Cond)
		tf.stmt(s.Body)
		tf.stmt(s.Else)
	case *ast.ForStmt:
		tf.stmt(s.Init)
		if s.Cond != nil {
			tf.exprTaint(s.Cond)
		}
		tf.stmt(s.Post)
		tf.stmt(s.Body)
	case *ast.SwitchStmt:
		tf.stmt(s.Init)
		if s.Tag != nil {
			tf.exprTaint(s.Tag)
		}
		tf.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		tf.stmt(s.Init)
		tf.stmt(s.Assign)
		tf.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			tf.exprTaint(e)
		}
		for _, st := range s.Body {
			tf.stmt(st)
		}
	case *ast.SelectStmt:
		multi := len(s.Body.List) > 1
		if multi {
			tf.selectDepth++
			if tf.selectPos == token.NoPos {
				tf.selectPos = s.Pos()
			}
		}
		tf.stmt(s.Body)
		if multi {
			tf.selectDepth--
			if tf.selectDepth == 0 {
				tf.selectPos = token.NoPos
			}
		}
	case *ast.CommClause:
		tf.stmt(s.Comm)
		for _, st := range s.Body {
			tf.stmt(st)
		}
	case *ast.SendStmt:
		tf.exprTaint(s.Value)
	case *ast.ReturnStmt:
		sig, _ := tf.fn.Type().(*types.Signature)
		var m uint64
		var o *TaintOrigin
		if len(s.Results) == 0 && sig != nil {
			for i := 0; i < sig.Results().Len(); i++ {
				rv := sig.Results().At(i)
				m |= tf.mask[rv]
				o = firstOrigin(o, tf.origin[rv])
			}
		}
		for _, r := range s.Results {
			rm, ro := tf.exprTaint(r)
			m |= rm
			o = firstOrigin(o, ro)
		}
		if tf.sinks && tf.fn.Name() == "State" && m&taintBits != 0 {
			tf.sinkValue(s.Pos(), "snapshot State() result", m, o)
		}
		if m&^tf.retMask != 0 {
			tf.retMask |= m
			tf.changed = true
		}
		if m&taintBits != 0 && tf.retOrigin == nil {
			tf.retOrigin = o
			if tf.retOrigin == nil {
				tf.retOrigin = &TaintOrigin{Pos: s.Pos(), Desc: "nondeterministic value"}
			}
		}
	case *ast.DeferStmt:
		tf.callTaint(s.Call)
	case *ast.GoStmt:
		tf.callTaint(s.Call)
	case *ast.LabeledStmt:
		tf.stmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// TaintHits returns the local taint→sink flows of every function declared
// in the package at path, in source order — the detflow analyzer's entry
// point. The summaries (and their hit lists) are computed on first use and
// cached on the package's facts.
func (f *Facts) TaintHits(path string) (map[*types.Func][]SinkHit, error) {
	pf, err := f.PackageFacts(path)
	if err != nil {
		return nil, err
	}
	if pf == nil {
		return nil, nil
	}
	out := map[*types.Func][]SinkHit{}
	for fn := range pf.Funcs {
		ts := f.TaintOf(fn)
		if len(ts.Hits) > 0 {
			out[fn] = ts.Hits
		}
	}
	return out, nil
}

// TaintDesc renders a hit for diagnostics.
func TaintDesc(h SinkHit) string {
	if h.Origin == nil {
		return fmt.Sprintf("nondeterministic value flows into %s", h.Sink)
	}
	return fmt.Sprintf("nondeterministic value (%s) flows into %s", h.Origin.Desc, h.Sink)
}
