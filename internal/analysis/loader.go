package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Std marks a package resolved from GOROOT. Fact computation stops at
	// the standard-library boundary: std behaviour comes from the curated
	// tables in facts.go, never from traversing std sources.
	Std bool
	// loader is the loader that produced this package, so fact queries can
	// reach sibling and dependency packages through the same cache.
	loader *Loader
}

// Loader loads packages from source, resolving import paths to
// directories via Resolve and type-checking them with go/types. It exists
// because the repository is stdlib-only: with golang.org/x/tools
// unavailable there is no go/packages, so dependencies (including the
// standard library) are parsed and checked from source. Loads are cached
// per import path.
type Loader struct {
	Fset *token.FileSet
	// Resolve maps an import path to the directory holding its sources.
	Resolve func(path string) (string, error)

	pkgs    map[string]*Package
	loading map[string]bool
	facts   map[string]*PkgFacts
	allows  map[string]*allowCache
	// taintWalk guards against cycles in cross-package taint summary
	// computation (taint.go); it lives here because the recursion can
	// cross package boundaries.
	taintWalk map[*types.Func]bool
}

type allowCache struct {
	set   *AllowSet
	diags []Diagnostic
}

// NewLoader returns a loader with an empty cache.
func NewLoader(resolve func(string) (string, error)) *Loader {
	return &Loader{
		Fset:      token.NewFileSet(),
		Resolve:   resolve,
		pkgs:      map[string]*Package{},
		loading:   map[string]bool{},
		facts:     map[string]*PkgFacts{},
		allows:    map[string]*allowCache{},
		taintWalk: map[*types.Func]bool{},
	}
}

// AllowsFor returns the package's //mehpt:allow set, computing and caching
// it on first use. The single shared instance is what makes the staleallow
// audit sound: every consumer (the driver's suppression pass, the fact
// engine's site waivers) marks usage on the same entries.
func (l *Loader) AllowsFor(pkg *Package) (*AllowSet, []Diagnostic) {
	if c, ok := l.allows[pkg.Path]; ok {
		return c.set, c.diags
	}
	set, diags := CollectAllows(pkg.Fset, pkg.Files)
	l.allows[pkg.Path] = &allowCache{set: set, diags: diags}
	return set, diags
}

// Load parses and type-checks the package at the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, err := l.Resolve(path)
	if err != nil {
		return nil, err
	}
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name),
			nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	cfg := types.Config{
		Importer:    importerFunc(func(p string) (*types.Package, error) { return l.importPkg(p) }),
		FakeImportC: true,
		// Dependencies are checked from source; tolerate their soft errors
		// but fail loudly on the target package via the returned error.
		Error: func(error) {},
	}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	std := strings.HasPrefix(dir, filepath.Join(build.Default.GOROOT, "src")+string(filepath.Separator))
	p := &Package{Path: path, Fset: l.Fset, Files: files, Types: tpkg, Info: info,
		Std: std, loader: l}
	l.pkgs[path] = p
	return p, nil
}

// importPkg implements the types.Importer side of the loader.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	p, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return p.Types, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// gorootDir resolves a standard-library import path, trying the normal
// source tree and then the std vendor tree (e.g. golang.org/x/... imports
// inside net or crypto).
func gorootDir(path string) (string, error) {
	src := filepath.Join(build.Default.GOROOT, "src")
	dir := filepath.Join(src, filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, nil
	}
	dir = filepath.Join(src, "vendor", filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, nil
	}
	return "", fmt.Errorf("cannot resolve import %q", path)
}

// ModuleResolver resolves imports for a single module rooted at rootDir
// with the given module path; everything else is assumed to be standard
// library. This matches the repository's stdlib-only constraint.
func ModuleResolver(module, rootDir string) func(string) (string, error) {
	return func(path string) (string, error) {
		if path == module {
			return rootDir, nil
		}
		if rest, ok := strings.CutPrefix(path, module+"/"); ok {
			return filepath.Join(rootDir, filepath.FromSlash(rest)), nil
		}
		return gorootDir(path)
	}
}

// TestdataResolver resolves imports under a GOPATH-style srcRoot first
// (testdata/src/<importpath>), falling back to the standard library. The
// analysistest harness uses it so golden packages can mimic real repo
// import paths (e.g. repro/internal/simx) without living in the module.
func TestdataResolver(srcRoot string) func(string) (string, error) {
	return func(path string) (string, error) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
		return gorootDir(path)
	}
}
