package chunk

import (
	"errors"
	"testing"

	"repro/internal/addr"
	"repro/internal/l2p"
	"repro/internal/phys"
)

func newStore(t *testing.T, memBytes uint64) (*Store, *phys.Memory, *l2p.Table) {
	t.Helper()
	mem := phys.NewMemory(memBytes)
	alloc := phys.NewAllocator(mem, 0) // no fragmentation in unit tests
	tbl := l2p.New(3)
	s, _, err := NewStore(alloc, tbl, 0, addr.Page4K, 8*addr.KB)
	if err != nil {
		t.Fatal(err)
	}
	return s, mem, tbl
}

func TestNewStoreSingleChunk(t *testing.T) {
	s, mem, tbl := newStore(t, 64*addr.MB)
	if s.NumChunks() != 1 || s.ChunkBytes() != 8*addr.KB {
		t.Errorf("chunks=%d chunkBytes=%d", s.NumChunks(), s.ChunkBytes())
	}
	if s.WayBytes() != 8*addr.KB || s.FootprintBytes() != 8*addr.KB {
		t.Errorf("way=%d footprint=%d", s.WayBytes(), s.FootprintBytes())
	}
	if tbl.Used(0, addr.Page4K) != 1 {
		t.Errorf("L2P entries = %d, want 1", tbl.Used(0, addr.Page4K))
	}
	if mem.Stats().MaxContiguous != 8*addr.KB {
		t.Errorf("MaxContiguous = %d", mem.Stats().MaxContiguous)
	}
}

// TestGrowWithinChunk reproduces Figure 3a-b: a way smaller than its chunk
// grows without new allocation.
func TestGrowWithinChunk(t *testing.T) {
	mem := phys.NewMemory(64 * addr.MB)
	alloc := phys.NewAllocator(mem, 0)
	tbl := l2p.New(3)
	s, _, err := NewStore(alloc, tbl, 0, addr.Page4K, 4*addr.KB)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumChunks() != 1 {
		t.Fatalf("chunks = %d", s.NumChunks())
	}
	if _, err := s.Extend(8 * addr.KB); err != nil {
		t.Fatal(err)
	}
	if s.NumChunks() != 1 || tbl.Used(0, addr.Page4K) != 1 {
		t.Error("growing within the chunk must not allocate")
	}
}

// TestGrowToL2PLimit reproduces Figure 3c-d: doubling adds 8KB chunks until
// all 64 (stolen) entries are used at 512KB.
func TestGrowToL2PLimit(t *testing.T) {
	s, _, tbl := newStore(t, 256*addr.MB)
	for target := uint64(16 * addr.KB); target <= 512*addr.KB; target *= 2 {
		if !s.CanExtendInPlace(target) {
			t.Fatalf("CanExtendInPlace(%d) = false", target)
		}
		if _, err := s.Extend(target); err != nil {
			t.Fatalf("Extend(%d): %v", target, err)
		}
	}
	if s.NumChunks() != 64 {
		t.Errorf("chunks = %d, want 64", s.NumChunks())
	}
	if tbl.Used(0, addr.Page4K) != 64 {
		t.Errorf("L2P used = %d, want 64", tbl.Used(0, addr.Page4K))
	}
	// The next doubling cannot be in-place.
	if s.CanExtendInPlace(1 * addr.MB) {
		t.Error("CanExtendInPlace(1MB) = true at 64 chunks of 8KB")
	}
	if _, err := s.Extend(1 * addr.MB); !errors.Is(err, ErrL2PFull) {
		t.Errorf("Extend past L2P limit: err = %v, want ErrL2PFull", err)
	}
	// Failed extension must not leak entries or chunks.
	if s.NumChunks() != 64 || tbl.Used(0, addr.Page4K) != 64 {
		t.Error("failed Extend leaked resources")
	}
}

// TestTransition reproduces Figure 3d-e: the 8KB→1MB chunk-size switch
// collapses 64 entries to 1.
func TestTransition(t *testing.T) {
	s, mem, tbl := newStore(t, 256*addr.MB)
	if _, err := s.Extend(512 * addr.KB); err != nil {
		t.Fatal(err)
	}
	freeBefore := mem.FreeBytes()
	if _, err := s.Transition(1 * addr.MB); err != nil {
		t.Fatal(err)
	}
	if s.ChunkBytes() != 1*addr.MB || s.NumChunks() != 1 {
		t.Errorf("after transition: chunkBytes=%d chunks=%d", s.ChunkBytes(), s.NumChunks())
	}
	if tbl.Used(0, addr.Page4K) != 1 {
		t.Errorf("L2P used = %d, want 1", tbl.Used(0, addr.Page4K))
	}
	// 512KB of 8KB chunks freed, 1MB allocated.
	if got, want := mem.FreeBytes(), freeBefore+512*addr.KB-1*addr.MB; got != want {
		t.Errorf("free bytes = %d, want %d", got, want)
	}
	// Further growth adds 1MB chunks.
	if _, err := s.Extend(2 * addr.MB); err != nil {
		t.Fatal(err)
	}
	if s.NumChunks() != 2 {
		t.Errorf("chunks = %d, want 2", s.NumChunks())
	}
}

func TestTransitionLadderTop(t *testing.T) {
	if next := NextChunkBytes(64 * addr.MB); next != 0 {
		t.Errorf("NextChunkBytes(64MB) = %d, want 0", next)
	}
	if next := NextChunkBytes(8 * addr.KB); next != 1*addr.MB {
		t.Errorf("NextChunkBytes(8KB) = %d", next)
	}
	if next := NextChunkBytes(12345); next != 0 {
		t.Errorf("NextChunkBytes(off-ladder) = %d, want 0", next)
	}
}

// TestTableII verifies the analytic Table II relationship.
func TestTableII(t *testing.T) {
	cases := []struct {
		chunk, maxWay uint64
	}{
		{8 * addr.KB, 512 * addr.KB},
		{1 * addr.MB, 64 * addr.MB},
		{8 * addr.MB, 512 * addr.MB},
		{64 * addr.MB, 4 * addr.GB},
	}
	for _, c := range cases {
		if got := MaxWayBytes(c.chunk); got != c.maxWay {
			t.Errorf("MaxWayBytes(%d) = %d, want %d", c.chunk, got, c.maxWay)
		}
	}
}

func TestShrink(t *testing.T) {
	s, mem, tbl := newStore(t, 256*addr.MB)
	if _, err := s.Extend(128 * addr.KB); err != nil {
		t.Fatal(err)
	}
	if s.NumChunks() != 16 {
		t.Fatalf("chunks = %d, want 16", s.NumChunks())
	}
	s.ShrinkTo(32 * addr.KB)
	if s.NumChunks() != 4 || tbl.Used(0, addr.Page4K) != 4 {
		t.Errorf("after shrink: chunks=%d l2p=%d, want 4/4", s.NumChunks(), tbl.Used(0, addr.Page4K))
	}
	if s.WayBytes() != 32*addr.KB {
		t.Errorf("WayBytes = %d", s.WayBytes())
	}
	s.Free()
	if s.NumChunks() != 0 || tbl.Used(0, addr.Page4K) != 0 {
		t.Error("Free leaked resources")
	}
	if mem.FreeBytes() != mem.TotalBytes() {
		t.Error("Free did not return all memory")
	}
}

func TestSlotAddrWithinChunks(t *testing.T) {
	s, _, _ := newStore(t, 256*addr.MB)
	if _, err := s.Extend(64 * addr.KB); err != nil { // 8 chunks
		t.Fatal(err)
	}
	seen := make(map[addr.PhysAddr]bool)
	for off := uint64(0); off < 64*addr.KB; off += 64 {
		pa := s.SlotAddr(off)
		if seen[pa] {
			t.Fatalf("offset %d maps to duplicate physical address %#x", off, pa)
		}
		seen[pa] = true
	}
	defer func() {
		if recover() == nil {
			t.Error("SlotAddr beyond way did not panic")
		}
	}()
	s.SlotAddr(64 * addr.KB)
}

// TestAllocationFailureRollsBack: an out-of-memory mid-extension must leave
// the store consistent.
func TestAllocationFailureRollsBack(t *testing.T) {
	mem := phys.NewMemory(32 * addr.KB) // room for only 4 chunks
	alloc := phys.NewAllocator(mem, 0)
	tbl := l2p.New(3)
	s, _, err := NewStore(alloc, tbl, 0, addr.Page4K, 8*addr.KB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Extend(256 * addr.KB); err == nil {
		t.Fatal("Extend should have failed")
	}
	if s.NumChunks() != 1 || s.WayBytes() != 8*addr.KB {
		t.Errorf("rollback failed: chunks=%d way=%d", s.NumChunks(), s.WayBytes())
	}
	if tbl.Used(0, addr.Page4K) != 1 {
		t.Errorf("L2P leaked: used=%d", tbl.Used(0, addr.Page4K))
	}
}
