package chunk

import (
	"repro/internal/addr"
	"repro/internal/l2p"
	"repro/internal/phys"
)

// State is the serializable form of a Store: pure accounting, no frames
// are moved. The referenced L2P entries are captured separately (the L2P
// table serializes as a whole); the chunk PPNs recorded here are the frames
// the restored allocator state already shows as allocated.
type State struct {
	Way        int
	Size       addr.PageSize
	Ladder     []uint64
	ChunkBytes uint64
	Chunks     []addr.PPN
	WayBytes   uint64
}

// State returns a deep copy of the store's accounting.
func (s *Store) State() State {
	st := State{
		Way:        s.way,
		Size:       s.size,
		ChunkBytes: s.chunkBytes,
		WayBytes:   s.wayBytes,
	}
	if s.ladder != nil {
		st.Ladder = make([]uint64, len(s.ladder))
		copy(st.Ladder, s.ladder)
	}
	st.Chunks = make([]addr.PPN, len(s.chunks))
	copy(st.Chunks, s.chunks)
	return st
}

// RestoreStore rebuilds a store over an already-restored allocator and L2P
// table. It performs no allocation: the chunks in st are owned already
// (their frames are marked allocated in the restored phys state, and their
// L2P entries are part of the restored L2P accounting).
func RestoreStore(st State, alloc phys.Source, tbl *l2p.Table) *Store {
	s := &Store{
		alloc:      alloc,
		l2p:        tbl,
		way:        st.Way,
		size:       st.Size,
		chunkBytes: st.ChunkBytes,
		wayBytes:   st.WayBytes,
	}
	if st.Ladder != nil {
		s.ladder = make([]uint64, len(st.Ladder))
		copy(s.ladder, st.Ladder)
	}
	s.chunks = make([]addr.PPN, len(st.Chunks))
	copy(s.chunks, st.Chunks)
	return s
}

// Chunks returns the chunk base PPNs (scrubber access: each chunk is
// ChunkBytes of physically-contiguous allocated memory).
func (s *Store) Chunks() []addr.PPN { return s.chunks }
