// Package chunk implements the chunked physical backing of an ME-HPT way
// (Sections IV-A, IV-B and V-B): each way is a collection of fixed-size,
// discontiguous physical chunks addressed through the L2P table, and the
// chunk size climbs a ladder (8KB → 1MB → 8MB → 64MB) as the way grows.
package chunk

import (
	"errors"
	"fmt"

	"repro/internal/addr"
	"repro/internal/l2p"
	"repro/internal/phys"
)

// Ladder is the paper's chosen chunk-size progression (Section V-B). The
// evaluated applications only ever need the first two rungs.
var Ladder = []uint64{8 * addr.KB, 1 * addr.MB, 8 * addr.MB, 64 * addr.MB}

// ErrL2PFull signals that growing the way at the current chunk size would
// exceed the way's L2P subtable capacity: the caller must transition to the
// next chunk size (out-of-place) instead.
var ErrL2PFull = errors.New("chunk: L2P subtable full; chunk-size transition required")

// ErrLadderExhausted is returned when the way cannot grow even at the
// largest chunk size.
var ErrLadderExhausted = errors.New("chunk: way exceeds capacity of largest chunk size")

// ErrTransitionFailed is returned when a chunk-size transition could not
// allocate the next rung's chunks and rolled back: the store is valid at
// its previous geometry, and the error chain reaches the underlying
// allocation failure (usually phys.ErrOutOfMemory).
var ErrTransitionFailed = errors.New("chunk: chunk-size transition failed and rolled back")

// NextChunkBytes returns the default-ladder rung above cur, or 0 if cur is
// the top.
func NextChunkBytes(cur uint64) uint64 { return nextIn(Ladder, cur) }

func nextIn(ladder []uint64, cur uint64) uint64 {
	for i, c := range ladder {
		if c == cur && i+1 < len(ladder) {
			return ladder[i+1]
		}
	}
	return 0
}

// nextRung returns the store's next ladder rung, or 0 at the top.
func (s *Store) nextRung() uint64 {
	ladder := s.ladder
	if ladder == nil {
		ladder = Ladder
	}
	return nextIn(ladder, s.chunkBytes)
}

// Store is the physical backing of one HPT way for one page size: the chunk
// list, the current chunk size, and the L2P entries that point at the
// chunks. It is pure accounting — slot contents live in the page table.
type Store struct {
	//mehpt:transient -- RestoreStore reattaches the separately restored physical allocator
	alloc phys.Source
	//mehpt:transient -- RestoreStore reattaches the separately restored L2P table
	l2p *l2p.Table
	way int
	size   addr.PageSize
	ladder []uint64

	chunkBytes uint64
	chunks     []addr.PPN
	wayBytes   uint64 // logical way size (a power of two ≥ one slot)
}

// NewStore creates the backing for a way of initialWayBytes, starting at the
// smallest chunk size of the default ladder. It returns the allocation cycle
// cost.
func NewStore(alloc phys.Source, tbl *l2p.Table, way int, size addr.PageSize, initialWayBytes uint64) (*Store, uint64, error) {
	return NewStoreLadder(alloc, tbl, way, size, initialWayBytes, Ladder)
}

// NewStoreLadder is NewStore with a custom chunk-size ladder (e.g. the
// Figure 15 ablation that only has 1MB chunks). The ladder must be sorted
// ascending; the smallest feasible rung that covers initialWayBytes within
// the L2P limit is chosen.
func NewStoreLadder(alloc phys.Source, tbl *l2p.Table, way int, size addr.PageSize, initialWayBytes uint64, ladder []uint64) (*Store, uint64, error) {
	if len(ladder) == 0 {
		panic("chunk: empty ladder")
	}
	s := &Store{
		alloc:  alloc,
		l2p:    tbl,
		way:    way,
		size:   size,
		ladder: ladder,
	}
	// Pick the smallest rung whose chunk count for the initial size fits
	// the currently-available L2P entries.
	avail := tbl.Limit(way, size) - tbl.Used(way, size)
	s.chunkBytes = ladder[len(ladder)-1]
	for _, rung := range ladder {
		if chunksFor(initialWayBytes, rung) <= avail {
			s.chunkBytes = rung
			break
		}
	}
	cycles, err := s.extendChunks(initialWayBytes)
	if err != nil {
		return nil, cycles, err
	}
	s.wayBytes = initialWayBytes
	return s, cycles, nil
}

// WayBytes returns the logical way size.
func (s *Store) WayBytes() uint64 { return s.wayBytes }

// ChunkBytes returns the current chunk size — the way's maximum contiguous
// allocation unit.
func (s *Store) ChunkBytes() uint64 { return s.chunkBytes }

// NumChunks returns the number of chunks backing the way.
func (s *Store) NumChunks() int { return len(s.chunks) }

// FootprintBytes returns the physical memory held: whole chunks, even if the
// logical way only fills part of the last one (Figure 3a: a 4KB way holds
// half of an 8KB chunk).
func (s *Store) FootprintBytes() uint64 {
	return uint64(len(s.chunks)) * s.chunkBytes
}

// chunksFor returns how many chunks of chunkBytes cover wayBytes.
func chunksFor(wayBytes, chunkBytes uint64) int {
	if wayBytes <= chunkBytes {
		return 1
	}
	return int((wayBytes + chunkBytes - 1) / chunkBytes)
}

// CanExtendInPlace reports whether the way can grow to targetBytes by adding
// chunks of the current size within the L2P limit — i.e. whether the next
// resize can be in-place.
func (s *Store) CanExtendInPlace(targetBytes uint64) bool {
	need := chunksFor(targetBytes, s.chunkBytes)
	have := len(s.chunks)
	if need <= have {
		return true
	}
	return s.l2p.Used(s.way, s.size)+(need-have) <= s.l2p.Limit(s.way, s.size)
}

// Extend grows the physical backing to cover targetBytes at the current
// chunk size, acquiring L2P entries and allocating chunks. It returns the
// allocation cycle cost. On ErrL2PFull the caller must Transition instead.
// On allocation failure the store is unchanged.
func (s *Store) Extend(targetBytes uint64) (uint64, error) {
	if targetBytes < s.wayBytes {
		panic(fmt.Sprintf("chunk: Extend(%d) below current size %d", targetBytes, s.wayBytes))
	}
	cycles, err := s.extendChunks(targetBytes)
	if err != nil {
		return cycles, err
	}
	s.wayBytes = targetBytes
	return cycles, nil
}

func (s *Store) extendChunks(targetBytes uint64) (uint64, error) {
	return s.extend(targetBytes, false)
}

// extend grows the chunk list to cover targetBytes. restoring selects the
// rollback allocation path, which bypasses fault injection: a restore
// re-acquires memory the caller just freed, so it must always succeed.
func (s *Store) extend(targetBytes uint64, restoring bool) (uint64, error) {
	need := chunksFor(targetBytes, s.chunkBytes)
	var total uint64
	added := 0
	for len(s.chunks) < need {
		if !s.l2p.Acquire(s.way, s.size) {
			// Roll back this extension attempt.
			s.rollback(added)
			return total, ErrL2PFull
		}
		var (
			ppn    addr.PPN
			cycles uint64
			err    error
		)
		if restoring {
			ppn, cycles, err = s.alloc.AllocRollback(s.chunkBytes)
		} else {
			ppn, cycles, err = s.alloc.Alloc(s.chunkBytes)
		}
		total += cycles
		if err != nil {
			s.l2p.Release(s.way, s.size, 1)
			s.rollback(added)
			return total, err
		}
		s.chunks = append(s.chunks, ppn)
		added++
	}
	return total, nil
}

func (s *Store) rollback(added int) {
	for i := 0; i < added; i++ {
		last := s.chunks[len(s.chunks)-1]
		s.chunks = s.chunks[:len(s.chunks)-1]
		s.alloc.Free(last, s.chunkBytes)
		s.l2p.Release(s.way, s.size, 1)
	}
}

// Transition replaces the backing with chunks of the next ladder size,
// covering targetBytes. It returns the new store's allocation cost. The old
// chunks are freed — the caller performs the (eager) rehash of entries
// before calling Transition, or buffers them, since the paper performs at
// most one transition per execution and treats it as the one out-of-place
// resize (Section VII-E1).
func (s *Store) Transition(targetBytes uint64) (uint64, error) {
	next := s.nextRung()
	if next == 0 {
		return 0, ErrLadderExhausted
	}
	// Release old resources first: the OS buffers the (at most 512KB of)
	// entries while it rebuilds, so old chunk memory and L2P entries are
	// returned before the new allocation.
	oldChunks := s.chunks
	oldChunkBytes := s.chunkBytes
	for _, c := range oldChunks {
		s.alloc.Free(c, oldChunkBytes)
	}
	s.l2p.Release(s.way, s.size, len(oldChunks))
	s.chunks = nil
	s.chunkBytes = next

	cycles, err := s.extendChunks(targetBytes)
	if err != nil {
		// Restore the old configuration so the caller can keep running at
		// the previous size. The restore allocations bypass fault injection
		// (AllocRollback): the old chunks were freed above, so the buddy
		// allocator can always hand the same capacity back. A failure here
		// is therefore an accounting-invariant violation, not a recoverable
		// condition, and stays a panic (see DESIGN.md "Fault model").
		s.chunkBytes = oldChunkBytes
		s.chunks = nil
		if _, err2 := s.extend(uint64(len(oldChunks))*oldChunkBytes, true); err2 != nil {
			panic(fmt.Sprintf("chunk: cannot restore after failed transition: %v", err2))
		}
		return cycles, fmt.Errorf("%w: %w", ErrTransitionFailed, err)
	}
	s.wayBytes = targetBytes
	return cycles, nil
}

// ShrinkTo reduces the logical way to targetBytes, freeing now-unneeded
// whole chunks and their L2P entries. Chunk size never moves back down the
// ladder (the paper does not shrink chunk sizes; note Section IX: avoiding
// de-allocation-induced fragmentation is a design goal).
func (s *Store) ShrinkTo(targetBytes uint64) {
	if targetBytes > s.wayBytes {
		panic(fmt.Sprintf("chunk: ShrinkTo(%d) above current size %d", targetBytes, s.wayBytes))
	}
	keep := chunksFor(targetBytes, s.chunkBytes)
	for len(s.chunks) > keep {
		last := s.chunks[len(s.chunks)-1]
		s.chunks = s.chunks[:len(s.chunks)-1]
		s.alloc.Free(last, s.chunkBytes)
		s.l2p.Release(s.way, s.size, 1)
	}
	s.wayBytes = targetBytes
}

// Free releases all chunks and L2P entries.
func (s *Store) Free() {
	for _, c := range s.chunks {
		s.alloc.Free(c, s.chunkBytes)
	}
	s.l2p.Release(s.way, s.size, len(s.chunks))
	s.chunks = nil
	s.wayBytes = 0
}

// SlotAddr returns the physical address of the slot at the given byte
// offset into the logical way — the address the L2P indirection resolves to
// (Figure 2b: chunk base plus hash-key mod chunk size).
func (s *Store) SlotAddr(offset uint64) addr.PhysAddr {
	if offset >= s.wayBytes {
		panic(fmt.Sprintf("chunk: offset %d beyond way size %d", offset, s.wayBytes))
	}
	ci := offset / s.chunkBytes
	return s.chunks[ci].Addr(addr.Page4K) + addr.PhysAddr(offset%s.chunkBytes)
}

// MaxWayBytes returns the largest way the current chunk size supports given
// a full 64-entry (stolen) L2P subtable — Table II's first column.
func MaxWayBytes(chunkBytes uint64) uint64 {
	return chunkBytes * l2p.StolenMax
}
