// Package sim is the trace-driven simulation engine: it wires a workload,
// an OS model, an MMU variant, a page-table organization, and the physical
// memory substrate into one simulated machine, runs an access trace, and
// accounts cycles the way the paper's evaluation does.
//
// The cycle model is in-order: each memory reference costs its translation
// latency (TLB hit or page walk) plus its data-access latency through the
// cache hierarchy; page faults additionally cost the OS fault path,
// including the contiguous-allocation cycle costs at the configured memory
// fragmentation. Absolute cycle counts are not meaningful — only the
// relative comparison between page-table organizations is (Figure 9).
//
// # Concurrency and RNG ownership
//
// A Machine is confined to the goroutine that runs it: the page tables it
// wires up (mehpt, ecpt, cuckoo) hold *rand.Rand instances, which are not
// safe for concurrent use. Machines themselves are fully independent —
// NewMachine builds every mutable component (memory, allocator, OS, MMU,
// page table, RNGs) privately from Config, deriving all randomness from
// Config.Seed — so the parallel experiment runner (internal/runner) may run
// any number of Machines on different goroutines concurrently. The one
// sharp edge is Config.MEHPTConfig: NewMachine copies the struct, and when
// its Rand field is nil (the normal case) each Machine creates its own RNG;
// callers must not set MEHPTConfig.Rand on a config shared across
// concurrent runs, since the copies would alias one generator.
package sim

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/ecpt"
	"repro/internal/inject"
	"repro/internal/mehpt"
	"repro/internal/mmu"
	"repro/internal/osmodel"
	"repro/internal/phys"
	"repro/internal/pt"
	"repro/internal/radix"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Org selects the page-table organization.
type Org int

// Page-table organizations under comparison.
const (
	Radix Org = iota
	ECPT
	MEHPT
)

// String implements fmt.Stringer.
func (o Org) String() string {
	switch o {
	case Radix:
		return "Radix"
	case ECPT:
		return "ECPT"
	case MEHPT:
		return "ME-HPT"
	}
	return fmt.Sprintf("Org(%d)", int(o))
}

// DataMLP is the memory-level-parallelism factor applied to data accesses:
// the 256-entry OoO core (Table III) overlaps independent data misses, so a
// data access costs its hierarchy latency divided by this factor. Page-walk
// accesses are serially dependent and get no such discount — the paper's
// core argument for why multi-access radix walks hurt ("does not leverage
// the memory-level parallelism afforded by modern processors", Section I).
const DataMLP = 4

// Config describes one simulation run.
type Config struct {
	Org      Org
	Workload workload.Spec
	THP      bool
	// Accesses is the number of memory references to simulate. The paper
	// measures 550M instructions/thread; at a typical ~1/3 memory-reference
	// density that is ~180M accesses at full scale.
	Accesses uint64
	Seed     int64
	// MemBytes is the machine's physical memory (Table III: 64GB).
	MemBytes uint64
	// FMFI is the ambient memory fragmentation (the paper evaluates at
	// 0.7). Memory is pre-fragmented to this level before the run.
	FMFI float64
	// FreeFraction is how much physical memory the fragmenter leaves free.
	FreeFraction float64
	// Populate pre-faults every touched page before the timed trace
	// (experiment drivers measuring only page-table state set this and use
	// Accesses = 0).
	Populate bool
	// MEHPTConfig optionally overrides the ME-HPT feature toggles
	// (ablations). Nil means the full design.
	MEHPTConfig *mehpt.Config
	// Inject is a fault-injection policy spec (see inject.Parse: "nth=N",
	// "rate=P", "pressure=F", "big=SIZE", joined by "+"). When non-empty,
	// the machine's allocator fails attempts per the policy; stateful
	// clauses are seeded from Seed so runs stay bit-identical per seed.
	Inject string
}

// Result is everything the experiments need from one run.
type Result struct {
	Org        Org
	Workload   string
	THP        bool
	Failed     bool // the run could not finish (allocation failure)
	FailReason string

	Cycles     uint64 // total simulated cycles
	Accesses   uint64
	DataCycles uint64 // data-access cache latency
	XlatCycles uint64 // translation latency (TLB + walks)
	OSCycles   uint64 // page-fault handling incl. allocation stalls

	MMU mmu.Stats
	OS  osmodel.Stats

	// InjectedFaults counts allocation attempts failed by the Inject policy
	// (zero when Inject is empty).
	InjectedFaults uint64

	// Page-table organization metrics.
	PTPeakBytes   uint64 // peak page-table memory (Table I, Figure 10)
	PTFinalBytes  uint64
	MaxContiguous uint64 // largest contiguous PT allocation (Figure 8)
	PTAllocCycles uint64
	PTMoves       uint64 // entries moved by resizes (rehash data movement)

	// Organization-specific handles for deep inspection (nil for others).
	MEHPT *mehpt.PageTable
	ECPT  *ecpt.PageTable
}

// pageTable unifies the three organizations for the engine.
type pageTable interface {
	osmodel.PageTable
	FootprintBytes() uint64
	PeakFootprintBytes() uint64
	MaxContiguousAlloc() uint64
	AllocCycles() uint64
	Moves() uint64
	Free()
}

// Machine is one wired-up simulated system.
type Machine struct {
	cfg      Config
	mem      *phys.Memory
	alloc    *phys.Allocator
	os       *osmodel.OS
	mmu      mmu.MMU
	table    pageTable
	cache    *cache.Hierarchy
	injector *inject.Injector // nil unless Config.Inject is set
	// Batch-loop scratch, allocated once with the machine: the buffers
	// cross the vaSource interface boundary, so as locals they would
	// escape to the heap on every Run* call. A machine runs one trace
	// loop at a time, so sharing them is safe.
	//mehpt:transient -- per-batch scratch, dead between NextBatch calls
	vaBuf [mmu.BatchWidth]addr.VirtAddr
	//mehpt:transient -- per-batch scratch, dead between batches
	paBuf [mmu.BatchWidth]addr.PhysAddr
	//mehpt:transient -- per-batch scratch, dead between batches
	latBuf [mmu.BatchWidth]uint64
}

// NewMachine builds the machine for cfg, pre-fragmenting memory.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.MemBytes == 0 {
		cfg.MemBytes = 64 * addr.GB
	}
	if cfg.FreeFraction == 0 {
		cfg.FreeFraction = 0.35
	}
	mem := phys.NewMemory(cfg.MemBytes)
	if cfg.FMFI > 0 {
		fr := phys.NewFragmenter(mem)
		rng := rand.New(rand.NewSource(cfg.Seed + 1))
		refOrder := phys.OrderFor(64 * addr.MB)
		if err := fr.Fragment(cfg.FMFI, cfg.FreeFraction, refOrder, rng); err != nil {
			return nil, fmt.Errorf("sim: fragmenting memory: %w", err)
		}
		mem.ResetStats()
	}
	alloc := phys.NewAllocator(mem, cfg.FMFI)
	m := &Machine{cfg: cfg, mem: mem, alloc: alloc,
		cache: cache.NewHierarchy(cache.TableIII())}
	if cfg.Inject != "" {
		// The policy is attached after fragmentation, so the fragmenter's
		// own blocker allocations are never injected; its seed is derived
		// from the job seed (offset 3 — the fragmenter uses 1, the table
		// RNG 2) so the failure stream is private to this machine.
		policy, err := inject.Parse(cfg.Inject, cfg.Seed+3)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		m.injector = inject.Attach(alloc, policy)
	}

	seed := uint64(cfg.Seed)*2654435761 + 12345
	switch cfg.Org {
	case Radix:
		rt, err := newRadixAdapter(alloc)
		if err != nil {
			return nil, err
		}
		m.table = rt
		m.mmu = mmu.NewRadix(rt.pt, m.cache)
	case ECPT:
		c := ecpt.DefaultConfig(seed)
		c.Rand = rand.New(rand.NewSource(cfg.Seed + 2))
		p, err := ecpt.NewPageTable(alloc, c)
		if err != nil {
			return nil, err
		}
		m.table = p
		m.mmu = mmu.NewHPT(p, m.cache)
	case MEHPT:
		var c mehpt.Config
		if cfg.MEHPTConfig != nil {
			c = *cfg.MEHPTConfig
		} else {
			c = mehpt.DefaultConfig(seed)
		}
		if c.Rand == nil {
			c.Rand = rand.New(rand.NewSource(cfg.Seed + 2))
		}
		p, err := mehpt.NewPageTable(alloc, c)
		if err != nil {
			return nil, err
		}
		m.table = p
		m.mmu = mmu.NewHPT(p, m.cache)
	default:
		return nil, fmt.Errorf("sim: unknown organization %v", cfg.Org)
	}

	osCfg := osmodel.DefaultConfig()
	osCfg.THP = cfg.THP
	osCfg.THPFraction = cfg.Workload.THPFraction
	m.os = osmodel.New(osCfg, m.table, alloc)
	return m, nil
}

// Run executes the configured simulation and returns its results.
func Run(cfg Config) Result {
	m, err := NewMachine(cfg)
	if err != nil {
		return Result{Org: cfg.Org, Workload: cfg.Workload.Name, THP: cfg.THP,
			Failed: true, FailReason: err.Error()}
	}
	return m.Run()
}

// Run executes the trace on an already-built machine.
func (m *Machine) Run() Result {
	res := Result{Org: m.cfg.Org, Workload: m.cfg.Workload.Name, THP: m.cfg.THP}

	if m.cfg.Populate {
		fail := false
		m.cfg.Workload.TouchedPageVAs(func(va addr.VirtAddr) bool {
			if _, ok := m.table.Translate(va); ok {
				return true
			}
			cycles, err := m.os.HandleFault(va)
			res.OSCycles += cycles
			if err != nil {
				res.Failed = true
				res.FailReason = err.Error()
				fail = true
				return false
			}
			return true
		})
		if fail {
			m.finish(&res)
			return res
		}
	}

	tr := m.cfg.Workload.NewTrace(m.cfg.Seed+7, m.cfg.Accesses)
	m.runSource(tr, &res)
	m.finish(&res)
	return res
}

// vaSource feeds the trace loops a batch of virtual addresses at a time;
// a short (including zero) fill ends the run. workload.Trace satisfies it
// directly; funcSource and streamSource adapt the other producers.
type vaSource interface {
	//mehpt:hotpath
	NextBatch(out []addr.VirtAddr) int
}

// runSource drives src through the access loop. The Org dispatch is hoisted
// out of the loop: each organization gets a loop over its concrete MMU type,
// so the per-batch TranslateBatch call needs no interface lookup and the
// per-access counters accumulate in registers instead of Result fields.
func (m *Machine) runSource(src vaSource, res *Result) {
	switch mm := m.mmu.(type) {
	case *mmu.HPT:
		m.traceLoopHPT(src, res, mm)
	case *mmu.Radix:
		m.traceLoopRadix(src, res, mm)
	default:
		m.traceLoopGeneric(src, res)
	}
}

// serviceFault runs the OS fault handler for va, accumulating its cycle
// cost. It returns false if the run must stop (allocation failure).
func (m *Machine) serviceFault(va addr.VirtAddr, res *Result) bool {
	cycles, err := m.os.HandleFault(va) //mehpt:allow hotalloc -- fault path: a miss leaves the translation fast path by design
	res.OSCycles += cycles
	if err != nil {
		res.Failed = true
		res.FailReason = err.Error()
		return false
	}
	return true
}

// traceLoopHPT is the timed access loop over the hashed-page-table MMU.
// traceLoopRadix is the same loop body over the radix MMU type; the two must
// stay in lockstep (traceLoopGeneric keeps the scalar interleave).
//
// The loop is batched: TranslateBatch resolves the longest TLB-hit run in
// one pipelined pass, AccessBatch replays the run's data accesses the same
// way, and only the element that misses every TLB drops to the scalar
// walk/fault path. The reorder is invisible — TLB hits touch only TLB state
// and data accesses only cache state, so hits-then-accesses commutes with
// the scalar interleave, and the batch stops at the first page walk (which
// does touch the data caches) so walks stay in scalar order. The batch-vs-
// scalar differential tests in batch_test.go pin this bit-for-bit.
//mehpt:hotpath
func (m *Machine) traceLoopHPT(src vaSource, res *Result, mm *mmu.HPT) {
	var accesses, xlat, data uint64
	vaBuf, paBuf, latBuf := &m.vaBuf, &m.paBuf, &m.latBuf
loop:
	for {
		n := src.NextBatch(vaBuf[:])
		if n == 0 {
			break
		}
		batch := vaBuf[:n]
		for len(batch) > 0 {
			done, latSum, missLat := mm.TranslateBatchPAs(batch, paBuf[:])
			xlat += latSum
			if done > 0 {
				accesses += uint64(done)
				m.cache.AccessBatch(paBuf[:done], latBuf[:done])
				for i := 0; i < done; i++ {
					data += latBuf[i] / DataMLP
				}
			}
			if done == len(batch) {
				break
			}
			// Element `done` missed every TLB inside the batch; finish its
			// walk (and any fault) exactly as the scalar loop would.
			va := batch[done]
			accesses++
			r := mm.TranslateWalk(va, missLat)
			xlat += r.Cycles
			if r.Fault {
				if !m.serviceFault(va, res) {
					break loop
				}
				r = mm.Translate(va)
				xlat += r.Cycles
				if r.Fault {
					res.Failed = true
					res.FailReason = "fault persisted after OS handling"
					break loop
				}
			}
			data += m.cache.Access(r.PA) / DataMLP
			batch = batch[done+1:]
		}
	}
	res.Accesses += accesses
	res.XlatCycles += xlat
	res.DataCycles += data
}

// traceLoopRadix mirrors traceLoopHPT for the radix MMU.
//mehpt:hotpath
func (m *Machine) traceLoopRadix(src vaSource, res *Result, mm *mmu.Radix) {
	var accesses, xlat, data uint64
	vaBuf, paBuf, latBuf := &m.vaBuf, &m.paBuf, &m.latBuf
loop:
	for {
		n := src.NextBatch(vaBuf[:])
		if n == 0 {
			break
		}
		batch := vaBuf[:n]
		for len(batch) > 0 {
			done, latSum, missLat := mm.TranslateBatchPAs(batch, paBuf[:])
			xlat += latSum
			if done > 0 {
				accesses += uint64(done)
				m.cache.AccessBatch(paBuf[:done], latBuf[:done])
				for i := 0; i < done; i++ {
					data += latBuf[i] / DataMLP
				}
			}
			if done == len(batch) {
				break
			}
			va := batch[done]
			accesses++
			r := mm.TranslateWalk(va, missLat)
			xlat += r.Cycles
			if r.Fault {
				if !m.serviceFault(va, res) {
					break loop
				}
				r = mm.Translate(va)
				xlat += r.Cycles
				if r.Fault {
					res.Failed = true
					res.FailReason = "fault persisted after OS handling"
					break loop
				}
			}
			data += m.cache.Access(r.PA) / DataMLP
			batch = batch[done+1:]
		}
	}
	res.Accesses += accesses
	res.XlatCycles += xlat
	res.DataCycles += data
}

// traceLoopGeneric mirrors the scalar loop over the MMU interface, for MMU
// implementations the fast paths do not know about. Only the trace decode is
// batched: an unknown MMU's walks may touch arbitrary machine state, so the
// per-element Translate/Access interleave must stay in scalar order (see
// mmu.TranslateBatchGeneric for the same constraint).
//mehpt:hotpath
func (m *Machine) traceLoopGeneric(src vaSource, res *Result) {
	var accesses, xlat, data uint64
	vaBuf := &m.vaBuf
loop:
	for {
		n := src.NextBatch(vaBuf[:])
		if n == 0 {
			break
		}
		for _, va := range vaBuf[:n] {
			accesses++
			r := m.mmu.Translate(va)
			xlat += r.Cycles
			if r.Fault {
				if !m.serviceFault(va, res) {
					break loop
				}
				r = m.mmu.Translate(va)
				xlat += r.Cycles
				if r.Fault {
					res.Failed = true
					res.FailReason = "fault persisted after OS handling"
					break loop
				}
			}
			data += m.cache.Access(r.PA) / DataMLP
		}
	}
	res.Accesses += accesses
	res.XlatCycles += xlat
	res.DataCycles += data
}

func (m *Machine) finish(res *Result) {
	res.Cycles = res.DataCycles + res.XlatCycles + res.OSCycles
	if m.injector != nil {
		res.InjectedFaults = m.injector.Stats().Injected
	}
	res.MMU = m.mmu.Stats()
	res.OS = m.os.Stats()
	res.PTPeakBytes = m.table.PeakFootprintBytes()
	res.PTFinalBytes = m.table.FootprintBytes()
	res.MaxContiguous = m.table.MaxContiguousAlloc()
	res.PTAllocCycles = m.table.AllocCycles()
	res.PTMoves = m.table.Moves()
	switch t := m.table.(type) {
	case *mehpt.PageTable:
		res.MEHPT = t
	case *ecpt.PageTable:
		res.ECPT = t
	}
}

// RunAddresses drives an arbitrary address stream through the machine:
// gen's emit callback performs one memory reference (translation, fault
// handling, data access) per call. It powers algorithm-driven traces
// (internal/graph kernels) as opposed to the statistical workload traces.
func (m *Machine) RunAddresses(gen func(emit func(va addr.VirtAddr))) Result {
	res := Result{Org: m.cfg.Org, Workload: "stream", THP: m.cfg.THP}
	gen(func(va addr.VirtAddr) {
		if res.Failed {
			return
		}
		res.Accesses++
		r := m.mmu.Translate(va)
		res.XlatCycles += r.Cycles
		if r.Fault {
			cycles, err := m.os.HandleFault(va)
			res.OSCycles += cycles
			if err != nil {
				res.Failed = true
				res.FailReason = err.Error()
				return
			}
			r = m.mmu.Translate(va)
			res.XlatCycles += r.Cycles
			if r.Fault {
				res.Failed = true
				res.FailReason = "fault persisted after OS handling"
				return
			}
		}
		res.DataCycles += m.cache.Access(r.PA) / DataMLP
	})
	m.finish(&res)
	return res
}

// funcSource adapts a plain fill callback to vaSource.
type funcSource func(out []addr.VirtAddr) int

//mehpt:hotpath
func (f funcSource) NextBatch(out []addr.VirtAddr) int {
	return f(out) //mehpt:allow hotalloc -- the callback is the caller's trace generator, outside the modeled pipeline; one dynamic call per BatchWidth accesses
}

// RunBatches drives the machine from a batch producer: next fills the
// buffer it is handed and returns how many addresses it produced; a short
// (including zero) fill ends the run. This is the batched counterpart of
// RunAddresses — same access semantics, but the machine runs its pipelined
// loop instead of one emit call per reference.
func (m *Machine) RunBatches(next func(out []addr.VirtAddr) int) Result {
	res := Result{Org: m.cfg.Org, Workload: "stream", THP: m.cfg.THP}
	m.runSource(funcSource(next), &res)
	m.finish(&res)
	return res
}

// streamSource adapts a trace.Stream to vaSource, stashing the terminal
// error (anything but clean io.EOF) for RunStream to report.
type streamSource struct {
	s trace.Stream
	//mehpt:transient -- replay error latch, only meaningful within one RunStream call
	err error
}

//mehpt:hotpath
func (s *streamSource) NextBatch(out []addr.VirtAddr) int {
	n, err := s.s.NextBatch(out)
	if err != nil && err != io.EOF {
		s.err = err
	}
	return n
}

// RunStream replays a recorded trace (either format; see trace.OpenStream)
// through the machine. The returned error is nil for a cleanly-terminated
// trace; a decode failure ends the run early and is returned alongside the
// results accumulated up to that point.
func (m *Machine) RunStream(src trace.Stream) (Result, error) {
	res := Result{Org: m.cfg.Org, Workload: "stream", THP: m.cfg.THP}
	ss := &streamSource{s: src}
	m.runSource(ss, &res)
	m.finish(&res)
	return res, ss.err
}

// Table returns the machine's page table (for experiment inspection before
// running).
func (m *Machine) Table() osmodel.PageTable { return m.table }

// Mem returns the machine's physical memory, for frame-accounting checks
// (the fault sweep compares free-list state against a baseline).
func (m *Machine) Mem() *phys.Memory { return m.mem }

// Injector returns the attached fault injector, or nil when Config.Inject
// is unset.
func (m *Machine) Injector() *inject.Injector { return m.injector }

// SetAmbientFMFI overrides the fragmentation level used to *price*
// allocations without physically shredding memory. Experiment drivers use
// it so a pristine buddy allocator still charges the paper's 0.7-FMFI
// costs.
func (m *Machine) SetAmbientFMFI(f float64) { m.alloc.AmbientFMFI = f }

// radixAdapter gives radix.PageTable the uniform pageTable shape (it lacks
// nothing but the interface names line up except for construction).
type radixAdapter struct {
	pt *radix.PageTable
}

func newRadixAdapter(alloc *phys.Allocator) (*radixAdapter, error) {
	p, err := radix.NewPageTable(alloc)
	if err != nil {
		return nil, err
	}
	return &radixAdapter{pt: p}, nil
}

func (r *radixAdapter) Map(vpn addr.VPN, s addr.PageSize, ppn addr.PPN) (uint64, error) {
	return r.pt.Map(vpn, s, ppn)
}
func (r *radixAdapter) Unmap(vpn addr.VPN, s addr.PageSize) (uint64, bool) {
	return r.pt.Unmap(vpn, s)
}
func (r *radixAdapter) Translate(va addr.VirtAddr) (pt.Translation, bool) {
	return r.pt.Translate(va)
}
func (r *radixAdapter) FootprintBytes() uint64     { return r.pt.FootprintBytes() }
func (r *radixAdapter) PeakFootprintBytes() uint64 { return r.pt.PeakFootprintBytes() }
func (r *radixAdapter) MaxContiguousAlloc() uint64 { return r.pt.MaxContiguousAlloc() }
func (r *radixAdapter) AllocCycles() uint64        { return r.pt.AllocCycles() }
func (r *radixAdapter) Moves() uint64              { return r.pt.Moves() }
func (r *radixAdapter) Free()                      { r.pt.Free() }
