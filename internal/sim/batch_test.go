package sim

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
)

// batchCfg is a small machine for the differential tests: unfragmented so
// construction is fast, big enough that every access class (fault, walk, TLB
// hit at both levels, DRAM data miss) occurs.
func batchCfg(org Org, inject string) Config {
	return Config{
		Org:      org,
		Seed:     13,
		MemBytes: 256 * addr.MB,
		Inject:   inject,
	}
}

// batchTestVAs is a seeded access stream over a working set wider than the
// TLBs: a hot region for steady-state hits plus a broad region that keeps
// faulting new pages in.
func batchTestVAs(seed int64, n int) []addr.VirtAddr {
	rng := rand.New(rand.NewSource(seed))
	base := addr.VirtAddr(0x4000_0000)
	vas := make([]addr.VirtAddr, n)
	for i := range vas {
		if rng.Intn(4) == 0 {
			vas[i] = base + addr.VirtAddr(rng.Intn(8192))*4096
		} else {
			vas[i] = base + addr.VirtAddr(rng.Intn(128))*4096
		}
	}
	return vas
}

// scalarOracle replays vas through the per-element scalar loop
// (RunAddresses), the reference the batched loop must match bit-for-bit.
func scalarOracle(t *testing.T, cfg Config, vas []addr.VirtAddr) Result {
	t.Helper()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.RunAddresses(func(emit func(va addr.VirtAddr)) {
		for _, va := range vas {
			emit(va)
		}
	})
}

// batchedRun replays vas through the batched loop, filling at most fill
// addresses per NextBatch call so partial and width-1 batches are exercised.
func batchedRun(t *testing.T, cfg Config, vas []addr.VirtAddr, fill int) Result {
	t.Helper()
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	return m.RunBatches(func(out []addr.VirtAddr) int {
		k := fill
		if k > len(out) {
			k = len(out)
		}
		if k > len(vas)-pos {
			k = len(vas) - pos
		}
		copy(out[:k], vas[pos:pos+k])
		pos += k
		return k
	})
}

// assertSameResult compares two Results field-for-field, ignoring only the
// organization-specific inspection handles (distinct machines necessarily
// hold distinct page-table pointers).
func assertSameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	got.MEHPT, got.ECPT = nil, nil
	want.MEHPT, want.ECPT = nil, nil
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: batched run diverges from scalar:\n got %+v\nwant %+v", label, got, want)
	}
}

// TestBatchedLoopMatchesScalar is the end-to-end bit-identity property the
// batched pipeline claims: for every organization and for batch fills of 1,
// a non-multiple of the width, and the full width, RunBatches must produce
// exactly the Result (cycles, stats, page-table metrics) of the scalar loop.
func TestBatchedLoopMatchesScalar(t *testing.T) {
	vas := batchTestVAs(29, 6000)
	for _, org := range []Org{Radix, ECPT, MEHPT} {
		cfg := batchCfg(org, "")
		want := scalarOracle(t, cfg, vas)
		if want.Failed {
			t.Fatalf("%v: scalar oracle failed: %s", org, want.FailReason)
		}
		if want.MMU.Walks == 0 || want.OS.Faults == 0 {
			t.Fatalf("%v: stream too tame (walks=%d faults=%d)", org, want.MMU.Walks, want.OS.Faults)
		}
		for _, fill := range []int{1, 5, 31, 64} {
			got := batchedRun(t, cfg, vas, fill)
			assertSameResult(t, org.String(), got, want)
		}
	}
}

// TestBatchedLoopMatchesScalarUnderInjection repeats the differential with a
// fault-injection policy that kills the run mid-stream: the batched loop
// must fail at the same access, with the same accumulated state, as the
// scalar loop.
func TestBatchedLoopMatchesScalarUnderInjection(t *testing.T) {
	vas := batchTestVAs(31, 6000)
	for _, org := range []Org{Radix, ECPT, MEHPT} {
		cfg := batchCfg(org, "nth=200")
		want := scalarOracle(t, cfg, vas)
		if !want.Failed {
			t.Fatalf("%v: injection did not kill the scalar run", org)
		}
		for _, fill := range []int{1, 31, 64} {
			got := batchedRun(t, cfg, vas, fill)
			assertSameResult(t, org.String(), got, want)
		}
	}
}

// TestBatchedLoopEmptySource: a producer that returns zero immediately ends
// the run cleanly with nothing accounted.
func TestBatchedLoopEmptySource(t *testing.T) {
	res := batchedRun(t, batchCfg(MEHPT, ""), nil, 64)
	if res.Failed || res.Accesses != 0 || res.Cycles != 0 {
		t.Errorf("empty source: %+v", res)
	}
}

// TestRunStreamMatchesRunBatches closes the loop with the trace engine: a
// binary trace replayed through RunStream must equal the same addresses fed
// through RunBatches (and hence the scalar loop, via the tests above).
func TestRunStreamMatchesRunBatches(t *testing.T) {
	vas := batchTestVAs(37, 4000)
	cfg := batchCfg(ECPT, "")
	want := batchedRun(t, cfg, vas, 64)

	var buf bytes.Buffer
	if err := trace.WriteBinaryVAs(&buf, vas); err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := trace.OpenStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.RunStream(s)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "binary replay", got, want)
}
