package sim

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/workload"
)

// smallCfg returns a fast configuration for unit tests: a scaled-down BFS
// on a small fragmented machine.
func smallCfg(org Org, name string, thp bool) Config {
	spec, err := workload.ByName(name, 256) // heavy scale-down for tests
	if err != nil {
		panic(err)
	}
	return Config{
		Org:      org,
		Workload: spec,
		THP:      thp,
		Accesses: 200_000,
		Seed:     1,
		MemBytes: 2 * addr.GB,
		FMFI:     0.7,
		Populate: false,
	}
}

func TestRunCompletesAllOrgs(t *testing.T) {
	for _, org := range []Org{Radix, ECPT, MEHPT} {
		res := Run(smallCfg(org, "BFS", false))
		if res.Failed {
			t.Fatalf("%v run failed: %s", org, res.FailReason)
		}
		if res.Accesses != 200_000 {
			t.Errorf("%v accesses = %d", org, res.Accesses)
		}
		if res.Cycles == 0 || res.XlatCycles == 0 || res.DataCycles == 0 {
			t.Errorf("%v cycle accounting empty: %+v", org, res.Cycles)
		}
		if res.OS.Faults == 0 {
			t.Errorf("%v saw no page faults", org)
		}
		if res.MMU.Walks == 0 {
			t.Errorf("%v saw no page walks", org)
		}
	}
}

func TestPopulateMatchesTouchedPages(t *testing.T) {
	cfg := smallCfg(MEHPT, "BFS", false)
	cfg.Accesses = 0
	cfg.Populate = true
	res := Run(cfg)
	if res.Failed {
		t.Fatalf("populate failed: %s", res.FailReason)
	}
	wantPages := cfg.Workload.TouchedBytes / (4 * addr.KB)
	if res.OS.Faults != wantPages {
		t.Errorf("faults = %d, want %d (one per touched page)", res.OS.Faults, wantPages)
	}
	if res.PTFinalBytes == 0 || res.MaxContiguous == 0 {
		t.Error("page-table metrics empty after populate")
	}
}

func TestTHPReducesFaults(t *testing.T) {
	base := smallCfg(MEHPT, "GUPS", false)
	base.Populate = true
	base.Accesses = 0
	noTHP := Run(base)
	base.THP = true
	withTHP := Run(base)
	if noTHP.Failed || withTHP.Failed {
		t.Fatalf("runs failed: %v / %v", noTHP.FailReason, withTHP.FailReason)
	}
	if withTHP.OS.HugeFaults == 0 {
		t.Error("THP run mapped no huge pages")
	}
	if withTHP.OS.Faults >= noTHP.OS.Faults {
		t.Errorf("THP faults %d not below 4KB faults %d", withTHP.OS.Faults, noTHP.OS.Faults)
	}
}

// TestContiguityOrdering is the paper's headline: radix needs only 4KB,
// ME-HPT needs only chunk-sized, ECPT needs whole ways.
func TestContiguityOrdering(t *testing.T) {
	var maxContig [3]uint64
	for _, org := range []Org{Radix, ECPT, MEHPT} {
		cfg := smallCfg(org, "BFS", false)
		cfg.Populate = true
		cfg.Accesses = 0
		res := Run(cfg)
		if res.Failed {
			t.Fatalf("%v failed: %s", org, res.FailReason)
		}
		maxContig[org] = res.MaxContiguous
	}
	if maxContig[Radix] != 4*addr.KB {
		t.Errorf("radix max contiguous = %d, want 4KB", maxContig[Radix])
	}
	if maxContig[MEHPT] >= maxContig[ECPT] {
		t.Errorf("ME-HPT contiguity %d not below ECPT %d", maxContig[MEHPT], maxContig[ECPT])
	}
}

// TestMEHPTUsesLessPTMemoryThanECPT checks the Figure 10 direction.
func TestMEHPTUsesLessPTMemoryThanECPT(t *testing.T) {
	var peak [3]uint64
	for _, org := range []Org{ECPT, MEHPT} {
		cfg := smallCfg(org, "BFS", false)
		cfg.Populate = true
		cfg.Accesses = 0
		res := Run(cfg)
		if res.Failed {
			t.Fatalf("%v failed: %s", org, res.FailReason)
		}
		peak[org] = res.PTPeakBytes
	}
	if peak[MEHPT] >= peak[ECPT] {
		t.Errorf("ME-HPT peak PT memory %d not below ECPT %d", peak[MEHPT], peak[ECPT])
	}
}

// TestDeterminism: the same config yields identical results.
func TestDeterminism(t *testing.T) {
	a := Run(smallCfg(MEHPT, "BFS", false))
	b := Run(smallCfg(MEHPT, "BFS", false))
	if a.Cycles != b.Cycles || a.OS.Faults != b.OS.Faults || a.PTPeakBytes != b.PTPeakBytes {
		t.Errorf("non-deterministic results: %d/%d vs %d/%d",
			a.Cycles, a.OS.Faults, b.Cycles, b.OS.Faults)
	}
}
