package sim

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/workload"
)

// TestPTMovesSemantics pins Result.PTMoves for all three organizations:
// radix never relocates entries (a PTE's slot is fixed by its VA; growth
// allocates fresh nodes), while both hashed organizations report the
// entries migrated by elastic resizing. The workload scale is chosen so the
// hashed tables upsize several times past their 384-slot initial capacity.
func TestPTMovesSemantics(t *testing.T) {
	spec, err := workload.ByName("BFS", 256)
	if err != nil {
		t.Fatal(err)
	}
	results := map[Org]Result{}
	for _, org := range []Org{Radix, ECPT, MEHPT} {
		r := Run(Config{
			Org: org, Workload: spec, Populate: true,
			Seed: 11, MemBytes: 2 * addr.GB,
		})
		if r.Failed {
			t.Fatalf("%v failed: %s", org, r.FailReason)
		}
		results[org] = r
	}
	if got := results[Radix].PTMoves; got != 0 {
		t.Errorf("radix PTMoves = %d, want 0 (entries never relocate)", got)
	}
	if got := results[ECPT].PTMoves; got == 0 {
		t.Error("ECPT PTMoves = 0, want > 0 (gradual rehash migrates entries)")
	}
	if got := results[MEHPT].PTMoves; got == 0 {
		t.Error("ME-HPT PTMoves = 0, want > 0 (in-place upsizes move ~half the entries)")
	}

	// The ME-HPT count must agree with the tables' own movement statistics.
	var tableMoves uint64
	for _, s := range addr.Sizes() {
		if tbl := results[MEHPT].MEHPT.Table(s); tbl != nil {
			tableMoves += tbl.Stats().MovesTotal
		}
	}
	if got := results[MEHPT].PTMoves; got != tableMoves {
		t.Errorf("ME-HPT PTMoves = %d, tables report %d", got, tableMoves)
	}
}
