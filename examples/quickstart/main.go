// Quickstart: create a Memory-Efficient Hashed Page Table, map pages,
// translate addresses, and inspect how the table grew — chunk by chunk,
// never needing more than one chunk of contiguous physical memory.
package main

//mehpt:allow:file errwrap -- example binary: output is illustrative, error plumbing is elided for brevity

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/mehpt"
	"repro/internal/phys"
	"repro/internal/stats"
)

func main() {
	// A machine with 1GB of physical memory, priced at the paper's 0.7 FMFI
	// fragmentation level.
	mem := phys.NewMemory(1 * addr.GB)
	alloc := phys.NewAllocator(mem, 0.7)

	// A process's ME-HPT with the paper's Table III configuration:
	// 3 ways per page size, 8KB initial ways, 0.6/0.2 resize thresholds.
	pt, err := mehpt.NewPageTable(alloc, mehpt.DefaultConfig(1))
	if err != nil {
		panic(err)
	}
	defer pt.Free()

	// Map 100k consecutive 4KB pages (a ~400MB heap).
	base := addr.VirtAddr(0x7000_0000_0000)
	for i := 0; i < 100_000; i++ {
		vpn := (base + addr.VirtAddr(i*4096)).PageNumber(addr.Page4K)
		frame, _, err := alloc.Alloc(4 * addr.KB)
		if err != nil {
			panic(err)
		}
		if _, err := pt.Map(vpn, addr.Page4K, frame); err != nil {
			panic(err)
		}
	}

	// Translate an address in the middle of the heap.
	va := base + 0x1234_5678
	tr, ok := pt.Translate(va)
	fmt.Printf("translate %#x -> frame %#x (%v page): %v\n",
		uint64(va), uint64(tr.PPN), tr.Size, ok)

	// And a 2MB huge page on top.
	hugeVPN := addr.VirtAddr(0x7fff_0000_0000).PageNumber(addr.Page2M)
	frame, _, _ := alloc.Alloc(2 * addr.MB)
	if _, err := pt.Map(hugeVPN, addr.Page2M, frame.Addr(addr.Page4K).PageNumber(addr.Page2M)); err != nil {
		panic(err)
	}
	tr, ok = pt.Translate(hugeVPN.Addr(addr.Page2M) + 12345)
	fmt.Printf("huge page translate: size=%v ok=%v\n", tr.Size, ok)

	// The interesting part: how the table is laid out physically.
	t4k := pt.Table(addr.Page4K)
	fmt.Printf("\n4KB page table after 100k mappings:\n")
	fmt.Printf("  entries (clusters):    %d\n", t4k.Len())
	fmt.Printf("  way sizes:             %v slots\n", t4k.WaySizes())
	fmt.Printf("  chunk size per way:    %v\n", humanAll(t4k.WayChunkBytes()))
	fmt.Printf("  total PT memory:       %s\n", stats.HumanBytes(pt.FootprintBytes()))
	fmt.Printf("  max contiguous alloc:  %s  <- the paper's headline metric\n",
		stats.HumanBytes(pt.MaxContiguousAlloc()))
	fmt.Printf("  L2P entries in use:    %d of %d\n",
		pt.L2P().TotalUsed(), pt.L2P().TotalEntries())
	st := t4k.Stats()
	fmt.Printf("  upsizes per way:       %v\n", st.UpsizesPerWay)
	fmt.Printf("  chunk-size transitions: %d (the only out-of-place resizes)\n", st.Transitions)
	fmt.Printf("  entries moved/stayed in-place during upsizes: %d/%d (~50%% stay)\n",
		st.UpsizeMoved, st.UpsizeStayed)
}

func humanAll(bs []uint64) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = stats.HumanBytes(b)
	}
	return out
}
