// Fragmentation scenario: the paper's headline failure mode, live. Shreds
// physical memory to increasing FMFI levels and shows that ECPT's
// contiguous way allocations first get expensive and then *fail*, while
// ME-HPT keeps running on small chunks.
package main

//mehpt:allow:file errwrap -- example binary: output is illustrative, error plumbing is elided for brevity

import (
	"fmt"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/ecpt"
	"repro/internal/mehpt"
	"repro/internal/phys"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	spec, _ := workload.ByName("GUPS", 16) // scaled-down GUPS: 4MB ECPT ways
	fmt.Printf("workload: %s (touched %s) — grows an HPT way per page size\n\n",
		spec.Name, stats.HumanBytes(spec.TouchedBytes))

	for _, fmfi := range []float64{0.0, 0.5, 0.7, 0.9} {
		fmt.Printf("=== memory fragmented to FMFI %.1f ===\n", fmfi)
		runOne("ECPT  ", fmfi, spec, func(alloc *phys.Allocator) (pager, error) {
			cfg := ecpt.DefaultConfig(9)
			cfg.Rand = rand.New(rand.NewSource(2))
			return ecpt.NewPageTable(alloc, cfg)
		})
		runOne("ME-HPT", fmfi, spec, func(alloc *phys.Allocator) (pager, error) {
			cfg := mehpt.DefaultConfig(9)
			cfg.Rand = rand.New(rand.NewSource(2))
			return mehpt.NewPageTable(alloc, cfg)
		})
		fmt.Println()
	}
}

// pager is the common surface of both page tables this example needs.
type pager interface {
	Map(vpn addr.VPN, s addr.PageSize, ppn addr.PPN) (uint64, error)
	MaxContiguousAlloc() uint64
	AllocCycles() uint64
	FootprintBytes() uint64
}

func runOne(label string, fmfi float64, spec workload.Spec, build func(*phys.Allocator) (pager, error)) {
	mem := phys.NewMemory(2 * addr.GB)
	if fmfi > 0 {
		fr := phys.NewFragmenter(mem)
		// Shred at the 2MB order: ME-HPT's 8KB/1MB chunks always find
		// space, but ECPT's multi-MB ways need ever-rarer coalesced runs.
		if err := fr.Fragment(fmfi, 0.5, phys.OrderFor(2*addr.MB), rand.New(rand.NewSource(3))); err != nil {
			fmt.Printf("%s  fragmenter: %v\n", label, err)
			return
		}
		mem.ResetStats()
	}
	alloc := phys.NewAllocator(mem, fmfi)

	pt, err := build(alloc)
	if err != nil {
		fmt.Printf("%s  could not even create initial tables: %v\n", label, err)
		return
	}
	mapped := 0
	var failure error
	spec.TouchedPageVAs(func(va addr.VirtAddr) bool {
		// This example exercises only page-table growth, so data frames are
		// not allocated — the page tables' own allocations are the point.
		if _, err := pt.Map(va.PageNumber(addr.Page4K), addr.Page4K, addr.PPN(mapped)); err != nil {
			failure = err
			return false
		}
		mapped++
		return true
	})
	verdict := "completed"
	if failure != nil {
		verdict = fmt.Sprintf("FAILED after %d pages: %v", mapped, failure)
	}
	fmt.Printf("%s  %s | max contig %7s | PT mem %8s | alloc stall %5.1fM cycles\n",
		label, verdict,
		stats.HumanBytes(pt.MaxContiguousAlloc()),
		stats.HumanBytes(pt.FootprintBytes()),
		float64(pt.AllocCycles())/1e6)
}
