// Graph kernels end to end: generates a real CSR graph, runs genuine
// GraphBIG-style kernels (BFS, PageRank, connected components, ...) and
// feeds their exact address streams through the full simulator under each
// page-table organization. Unlike examples/graphanalytics (which uses the
// calibrated statistical traces), every address here comes from a real
// algorithm executing on a real graph.
package main

//mehpt:allow:file errwrap -- example binary: output is illustrative, error plumbing is elided for brevity

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/addr"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		nodes  = flag.Uint64("nodes", 100_000, "graph nodes (paper inputs: 1M)")
		degree = flag.Int("degree", 16, "average out-degree")
		kernel = flag.String("kernel", "BFS", "kernel: BC BFS CC DC DFS PR SSSP TC")
		seed   = flag.Int64("seed", 1, "graph seed")
	)
	flag.Parse()

	g := graph.GenerateUniform(*nodes, *degree, *seed, workload.BaseVA)
	fmt.Printf("%v, kernel %s\n\n", g, *kernel)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "org\taccesses\tcycles\tspeedup\tTLBmiss%\tPT peak\tmax contig")
	var base float64
	for _, org := range []sim.Org{sim.Radix, sim.ECPT, sim.MEHPT} {
		m, err := sim.NewMachine(sim.Config{
			Org:      org,
			Workload: workload.Spec{Name: "graph"},
			Seed:     *seed,
			MemBytes: 16 * addr.GB,
		})
		if err != nil {
			fmt.Fprintf(w, "%v\tmachine: %v\n", org, err)
			continue
		}
		m.SetAmbientFMFI(0.7)
		var check float64
		res := m.RunAddresses(func(emit func(addr.VirtAddr)) {
			c, err := g.Run(*kernel, emit)
			if err != nil {
				panic(err)
			}
			check = c
		})
		if res.Failed {
			fmt.Fprintf(w, "%v\tFAILED: %s\n", org, res.FailReason)
			continue
		}
		cycles := float64(res.XlatCycles + res.DataCycles + res.PTAllocCycles)
		if base == 0 {
			base = cycles
		}
		fmt.Fprintf(w, "%v\t%d\t%.0fM\t%.2fx\t%.1f%%\t%s\t%s\n",
			org, res.Accesses, cycles/1e6, base/cycles,
			100*float64(res.MMU.Walks)/float64(res.MMU.Translations),
			stats.HumanBytes(res.PTPeakBytes), stats.HumanBytes(res.MaxContiguous))
		_ = check
	}
	w.Flush()
	fmt.Println("\nevery address above came from the real kernel executing on the CSR arrays")
}
