// Key-value store scenario (paper Section VIII): the elastic cuckoo hashing
// at the heart of ME-HPT applies directly to resizable in-memory indices.
// This example builds a small KV store on the cuckoo table and shows the
// gradual, allocation-light resizing in action: lookups never stall behind
// a stop-the-world rehash, and the store reports how much data each resize
// actually moved.
package main

//mehpt:allow:file errwrap -- example binary: output is illustrative, error plumbing is elided for brevity

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/cuckoo"
)

// Store is a tiny string-keyed KV store over the elastic cuckoo table.
// Values live in a slice; the table maps key hashes to value indices.
type Store struct {
	table  *cuckoo.Table
	keys   []string
	values []string
	moved  uint64
}

// NewStore creates an empty store.
func NewStore() *Store {
	s := &Store{}
	s.table = cuckoo.New(cuckoo.Config{
		Ways:           3,
		InitialEntries: 64,
		UpsizeAt:       0.6,
		DownsizeAt:     0.2,
		MaxKicks:       32,
		HashSeed:       0xFEED,
		Rand:           rand.New(rand.NewSource(7)),
		Hooks: cuckoo.Hooks{
			OnMove: func() { s.moved++ },
		},
	})
	return s
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	// Reserve the sentinel.
	v := h.Sum64()
	if v == cuckoo.EmptyKey {
		v--
	}
	return v
}

// Put stores key=value.
func (s *Store) Put(key, value string) error {
	hk := hashKey(key)
	if idx, ok := s.table.Lookup(hk); ok && s.keys[idx] == key {
		s.values[idx] = value
		return nil
	}
	s.keys = append(s.keys, key)
	s.values = append(s.values, value)
	_, err := s.table.Insert(hk, uint64(len(s.keys)-1))
	return err
}

// Get retrieves the value for key.
func (s *Store) Get(key string) (string, bool) {
	idx, ok := s.table.Lookup(hashKey(key))
	if !ok || s.keys[idx] != key {
		return "", false
	}
	return s.values[idx], true
}

// Delete removes key.
func (s *Store) Delete(key string) bool {
	hk := hashKey(key)
	if idx, ok := s.table.Lookup(hk); !ok || s.keys[idx] != key {
		return false
	}
	return s.table.Delete(hk)
}

func main() {
	s := NewStore()

	// Load a million entries; the table resizes gradually underneath.
	const n = 1_000_000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("user:%07d", i)
		if err := s.Put(key, fmt.Sprintf("payload-%d", i*31)); err != nil {
			panic(err)
		}
	}

	// Spot-check.
	for _, probe := range []int{0, 123456, n - 1} {
		key := fmt.Sprintf("user:%07d", probe)
		v, ok := s.Get(key)
		fmt.Printf("get %s -> %q (%v)\n", key, v, ok)
	}
	if _, ok := s.Get("user:missing"); ok {
		panic("phantom key")
	}

	st := s.table.Stats()
	fmt.Printf("\nstore after %d puts:\n", n)
	fmt.Printf("  elements:          %d\n", s.table.Len())
	fmt.Printf("  slots per way:     %d (x3 ways)\n", s.table.EntriesPerWay())
	fmt.Printf("  occupancy:         %.2f\n", float64(s.table.Len())/float64(s.table.Capacity()))
	fmt.Printf("  upsizes:           %d (gradual; lookups never blocked)\n", st.Upsizes)
	fmt.Printf("  entries moved:     %d (%.2f moves per element over all resizes)\n",
		s.moved, float64(s.moved)/float64(n))
	fmt.Printf("  cuckoo kicks:      %d (%.2f per insert)\n", st.Kicks, float64(st.Kicks)/float64(n))

	// Shrink: delete 90% and watch it downsize.
	for i := 0; i < n*9/10; i++ {
		s.Delete(fmt.Sprintf("user:%07d", i))
	}
	s.table.DrainResize()
	fmt.Printf("\nafter deleting 90%%:\n")
	fmt.Printf("  elements:      %d\n", s.table.Len())
	fmt.Printf("  slots per way: %d\n", s.table.EntriesPerWay())
	fmt.Printf("  downsizes:     %d\n", s.table.Stats().Downsizes)
}
