// Multi-process scenario (paper Section V-C): several processes with
// per-process ME-HPTs share one hart; on every context switch the OS saves
// and restores the outgoing and incoming L2P tables — only the valid
// entries move, so the overhead stays a small slice of the switch.
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/mehpt"
	"repro/internal/osmodel"
	"repro/internal/phys"
	"repro/internal/tlb"
	"repro/internal/workload"
)

func main() {
	var (
		nprocs   = flag.Int("procs", 4, "number of processes")
		switches = flag.Int("switches", 1000, "round-robin context switches")
		scale    = flag.Uint64("scale", 64, "workload scale")
	)
	flag.Parse()

	mem := phys.NewMemory(8 * addr.GB)
	alloc := phys.NewAllocator(mem, 0.7)

	apps := []string{"BFS", "GUPS", "MUMmer", "TC", "PR", "SysBench"}
	var procs []*osmodel.Proc
	fmt.Printf("%-4s %-9s %10s %12s %12s\n", "pid", "app", "pages", "PT memory", "L2P entries")
	for i := 0; i < *nprocs; i++ {
		spec, err := workload.ByName(apps[i%len(apps)], *scale)
		if err != nil {
			panic(err)
		}
		cfg := mehpt.DefaultConfig(uint64(i) + 1)
		cfg.Rand = rand.New(rand.NewSource(int64(i)))
		pt, err := mehpt.NewPageTable(alloc, cfg)
		if err != nil {
			panic(err)
		}
		pages := 0
		spec.TouchedPageVAs(func(va addr.VirtAddr) bool {
			frame, _, err := alloc.Alloc(4 * addr.KB)
			if err != nil {
				return false
			}
			if _, err := pt.Map(va.PageNumber(addr.Page4K), addr.Page4K, frame); err != nil {
				return false
			}
			pages++
			return true
		})
		fmt.Printf("%-4d %-9s %10d %12s %12d\n", i, spec.Name, pages,
			human(pt.FootprintBytes()), pt.L2PSaveRestoreEntries())
		procs = append(procs, &osmodel.Proc{ID: i, PT: pt, TLBs: tlb.NewTableIII()})
	}

	sched := osmodel.NewScheduler(osmodel.DefaultSwitchCosts(), procs...)
	total := sched.RoundRobin(*switches)
	st := sched.Stats()
	fmt.Printf("\n%d round-robin switches:\n", st.Switches)
	fmt.Printf("  total switch cycles:      %d (%.0f per switch)\n",
		total, float64(total)/float64(st.Switches))
	fmt.Printf("  L2P save/restore cycles:  %d (%.1f%% of switching, %.1f entries/switch)\n",
		st.L2PCyclesTotal, 100*float64(st.L2PCyclesTotal)/float64(st.SwitchCycles),
		sched.AvgL2PEntries())
	fmt.Println("\nSection V-C's claim holds: the MMU-resident L2P state adds only a")
	fmt.Println("few hundred cycles per switch, because only valid entries transfer.")
}

func human(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
