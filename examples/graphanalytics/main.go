// Graph analytics scenario: the paper's motivating workload class. Runs a
// BFS-like graph traversal through the full simulator under all three
// page-table organizations and reports the translation behaviour and
// memory-contiguity requirements side by side — a miniature Figure 8+9.
package main

//mehpt:allow:file errwrap -- example binary: output is illustrative, error plumbing is elided for brevity

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/addr"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "BFS", "workload (BC BFS CC DC DFS GUPS MUMmer PR SSSP SysBench TC)")
		scale    = flag.Uint64("scale", 32, "footprint divisor (1 = paper scale)")
		accesses = flag.Uint64("accesses", 2_000_000, "timed memory references")
		thp      = flag.Bool("thp", false, "enable transparent huge pages")
	)
	flag.Parse()

	spec, err := workload.ByName(*app, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %s data, %s touched, THP=%v, %d accesses\n\n",
		spec.Name, stats.HumanBytes(spec.DataBytes), stats.HumanBytes(spec.TouchedBytes),
		*thp, *accesses)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "org\tcycles\tspeedup\twalk/miss\tTLBmiss%\tPT peak\tmax contig\tfaults")
	var base float64
	for _, org := range []sim.Org{sim.Radix, sim.ECPT, sim.MEHPT} {
		res := sim.Run(sim.Config{
			Org:      org,
			Workload: spec,
			THP:      *thp,
			Accesses: *accesses,
			Populate: true,
			Seed:     1,
			MemBytes: 8 * addr.GB,
		})
		if res.Failed {
			fmt.Fprintf(w, "%v\tFAILED: %s\n", org, res.FailReason)
			continue
		}
		cycles := float64(res.XlatCycles + res.DataCycles + res.PTAllocCycles)
		if base == 0 {
			base = cycles
		}
		walkAvg := float64(0)
		if res.MMU.Walks > 0 {
			walkAvg = float64(res.MMU.WalkCycles) / float64(res.MMU.Walks)
		}
		missPct := 100 * float64(res.MMU.Walks) / float64(res.MMU.Translations)
		fmt.Fprintf(w, "%v\t%.0fM\t%.2fx\t%.0f cyc\t%.1f%%\t%s\t%s\t%d\n",
			org, cycles/1e6, base/cycles, walkAvg, missPct,
			stats.HumanBytes(res.PTPeakBytes), stats.HumanBytes(res.MaxContiguous),
			res.OS.Faults)
	}
	w.Flush()
	fmt.Println("\nspeedup is relative to Radix; 'max contig' is the paper's headline metric:")
	fmt.Println("ME-HPT needs only chunk-sized (8KB/1MB) contiguous memory, ECPT whole ways.")
}
