// Package repro_test is the benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation. Each benchmark executes its
// experiment driver end to end at a scaled-down configuration (so the whole
// suite runs in minutes) and reports domain-specific metrics alongside
// ns/op. The full-scale numbers live in EXPERIMENTS.md and are regenerated
// with cmd/mehpt-experiments at -scale 1.
package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/experiments"
	"repro/internal/levelhash"
	"repro/internal/mehpt"
	"repro/internal/phys"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/tlb"
	"repro/internal/workload"
)

// benchOptions is the scaled configuration the benchmarks run at.
func benchOptions() experiments.Options {
	o := experiments.TestOptions()
	o.Scale = 64
	o.TimedAccesses = 500_000
	return o
}

func BenchmarkTable1(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(o)
		if len(rows) != 11 {
			b.Fatal("short table")
		}
		var ratio float64
		for _, r := range rows {
			ratio += float64(r.ECPTTotal) / float64(r.TreeTotal)
		}
		b.ReportMetric(ratio/11, "ecpt-vs-tree-mem")
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2()
		if rows[1].MaxWayBytes != 64*addr.MB {
			b.Fatal("table II broken")
		}
	}
}

func BenchmarkAllocCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.AllocCost(0.7)
		if rows[len(rows)-1].Cycles == 0 {
			b.Fatal("no cost")
		}
	}
	b.ReportMetric(float64(experiments.AllocCost(0.7)[4].Cycles), "cycles/64MB-alloc")
}

func BenchmarkFragmentationStress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFragmentationStress(1*addr.GB, int64(i))
		for _, r := range rows {
			if r.SizeBytes == 64*addr.MB && r.OK {
				b.Fatal("64MB allocation survived shredding")
			}
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure8(o)
		var worstECPT, worstME uint64
		for _, r := range rows {
			if r.ECPT > worstECPT {
				worstECPT = r.ECPT
			}
			if r.MEHPT > worstME {
				worstME = r.MEHPT
			}
		}
		b.ReportMetric(float64(worstECPT)/float64(1<<10), "ecpt-contig-KB")
		b.ReportMetric(float64(worstME)/float64(1<<10), "mehpt-contig-KB")
	}
}

func BenchmarkFigure9(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure9(o)
		var me []float64
		for _, r := range rows {
			if r.MEHPT > 0 {
				me = append(me, r.MEHPT)
			}
		}
		b.ReportMetric(stats.GeoMean(me), "mehpt-speedup-geomean")
	}
}

func BenchmarkFigure10(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure10(o)
		var saved []float64
		for _, r := range rows {
			saved = append(saved, r.ReductionPct)
		}
		b.ReportMetric(stats.Mean(saved), "pt-mem-saved-pct")
	}
}

func BenchmarkFigure11(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure11(o)
		var ups float64
		for _, r := range rows {
			for _, u := range r.Ways {
				ups += float64(u)
			}
		}
		b.ReportMetric(ups/float64(len(rows)*3), "upsizes/way")
	}
}

func BenchmarkFigure12(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure12(o)
		var maxWay uint64
		for _, r := range rows {
			for _, w := range r.WayBytes {
				if w > maxWay {
					maxWay = w
				}
			}
		}
		b.ReportMetric(float64(maxWay)/(1<<20), "max-way-MB")
	}
}

func BenchmarkFigure13(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure13(o)
		var fr []float64
		for _, r := range rows {
			if r.Fraction >= 0 {
				fr = append(fr, r.Fraction)
			}
		}
		b.ReportMetric(stats.Mean(fr), "moved-fraction")
	}
}

func BenchmarkFigure14(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure14(o)
		var used float64
		for _, r := range rows {
			used += float64(r.Used)
		}
		b.ReportMetric(used/float64(len(rows)), "l2p-entries")
	}
}

func BenchmarkFigure15(b *testing.B) {
	o := benchOptions()
	o.Scale = 1 // tiny graphs already
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure15(o)
		b.ReportMetric(float64(rows[0].Way1MBOnly)/float64(rows[0].Way8KBPlus1M),
			"1MB-vs-ladder-waste-1Knodes")
	}
}

func BenchmarkFigure16(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		_, mean := experiments.Figure16(o)
		b.ReportMetric(mean, "reinsertions/insert")
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

func ablationRun(b *testing.B, mutate func(*simCfg)) sim.Result {
	b.Helper()
	spec, err := workload.ByName("BFS", 128)
	if err != nil {
		b.Fatal(err)
	}
	cfg := simCfg{
		Org: sim.MEHPT, Workload: spec, Populate: true,
		Seed: 2, MemBytes: 2 * addr.GB,
	}
	mutate(&cfg)
	return sim.Run(sim.Config(cfg))
}

type simCfg = sim.Config

func BenchmarkAblationInPlaceMoves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inPlace := ablationRun(b, func(c *simCfg) {})
		outPlace := ablationRun(b, func(c *simCfg) {
			m := mehpt.DefaultConfig(2)
			m.InPlace = false
			c.MEHPTConfig = &m
		})
		// In-place resizing should move roughly half as many entries.
		b.ReportMetric(float64(inPlace.PTMoves), "inplace-moves")
		b.ReportMetric(float64(outPlace.PTMoves), "outofplace-moves")
	}
}

func BenchmarkAblationWeightedInsert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		weighted := ablationRun(b, func(c *simCfg) {})
		uniform := ablationRun(b, func(c *simCfg) {
			m := mehpt.DefaultConfig(2)
			m.WeightedInsert = false
			c.MEHPTConfig = &m
		})
		b.ReportMetric(float64(weighted.MEHPT.Table(addr.Page4K).Stats().Kicks), "weighted-kicks")
		b.ReportMetric(float64(uniform.MEHPT.Table(addr.Page4K).Stats().Kicks), "uniform-kicks")
	}
}

func BenchmarkAblationChunkLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		def := ablationRun(b, func(c *simCfg) {})
		oneMB := ablationRun(b, func(c *simCfg) {
			m := mehpt.DefaultConfig(2)
			m.Ladder = []uint64{1 * addr.MB, 8 * addr.MB, 64 * addr.MB}
			c.MEHPTConfig = &m
		})
		b.ReportMetric(float64(def.PTPeakBytes)/(1<<10), "ladder-peak-KB")
		b.ReportMetric(float64(oneMB.PTPeakBytes)/(1<<10), "1MBonly-peak-KB")
	}
}

func BenchmarkAblationOccupancyThresholds(b *testing.B) {
	for _, up := range []float64{0.4, 0.6, 0.8} {
		up := up
		b.Run(thrName(up), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := ablationRun(b, func(c *simCfg) {
					m := mehpt.DefaultConfig(2)
					m.UpsizeAt = up
					c.MEHPTConfig = &m
				})
				st := r.MEHPT.Table(addr.Page4K).Stats()
				b.ReportMetric(float64(st.Kicks)/float64(st.Inserts), "kicks/insert")
				b.ReportMetric(float64(r.PTPeakBytes)/(1<<10), "peak-KB")
			}
		})
	}
}

func thrName(f float64) string {
	switch f {
	case 0.4:
		return "upsize-0.4"
	case 0.6:
		return "upsize-0.6"
	default:
		return "upsize-0.8"
	}
}

// BenchmarkSectionIX quantifies the paper's Section IX comparison against
// Level Hashing: probes per lookup and entries moved per resize.
func BenchmarkSectionIX(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lh := levelhash.New(64, 9)
		for k := uint64(0); k < 40000; k++ {
			if err := lh.Insert(k, k); err != nil {
				b.Fatal(err)
			}
		}
		for k := uint64(0); k < 10000; k++ {
			lh.Lookup(k + 1_000_000) // misses probe all candidates
		}
		b.ReportMetric(lh.ProbesPerLookup(), "levelhash-probes/lookup")
		lhSt := lh.Stats()
		b.ReportMetric(float64(lhSt.Moves)/float64(lhSt.Resizes)/40000, "levelhash-movefrac/resize")

		// ME-HPT in-place: ~0.5 of entries move per upsize, no extra probes.
		r := ablationRun(b, func(c *simCfg) {})
		st := r.MEHPT.Table(addr.Page4K).Stats()
		b.ReportMetric(float64(st.UpsizeMoved)/float64(st.UpsizeMoved+st.UpsizeStayed),
			"mehpt-movefrac/upsize")
	}
}

// BenchmarkHotPath measures the allocation-free steady-state paths in
// isolation: the TLB hit, the warm cache access, and the settled ME-HPT
// lookup. Their 0 B/op / 0 allocs/op columns in BENCH_<n>.json are the
// machine-independent regression gate for the hot pipeline (scripts/bench.sh
// fails any reading that becomes nonzero); the AllocsPerRun tests in the
// respective packages guard the same invariant in tier-1.
func BenchmarkHotPath(b *testing.B) {
	b.Run("TLBHit", func(b *testing.B) {
		tb := tlb.New(tlb.Config{Entries: 64, Ways: 4, Latency: 2})
		tb.Insert(42, 42)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := tb.Lookup(42); !ok {
				b.Fatal("warm TLB lookup missed")
			}
		}
	})
	b.Run("CacheAccessHit", func(b *testing.B) {
		h := cache.NewHierarchy(cache.TableIII())
		pa := addr.PhysAddr(0x4000)
		h.Access(pa)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if h.Access(pa) == 0 {
				b.Fatal("zero latency")
			}
		}
	})
	b.Run("MEHPTLookup", func(b *testing.B) {
		mem := phys.NewMemory(1 * addr.GB)
		alloc := phys.NewAllocator(mem, 0)
		cfg := mehpt.DefaultConfig(7)
		cfg.Rand = rand.New(rand.NewSource(1))
		p, err := mehpt.NewPageTable(alloc, cfg)
		if err != nil {
			b.Fatal(err)
		}
		const pages = 512
		for i := 0; i < pages; i++ {
			if _, err := p.Map(addr.VPN(i), addr.Page4K, addr.PPN(1000+i)); err != nil {
				b.Fatal(err)
			}
		}
		if err := p.Table(addr.Page4K).Settle(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := p.Translate(addr.VPN(i % pages).Addr(addr.Page4K)); !ok {
				b.Fatal("settled translate missed")
			}
		}
	})
}

// BenchmarkSteadyStateTranslate drives the full TranslateBatch → TLB →
// walk → cache pipeline through sim.Machine.RunBatches over a TLB-resident
// working set, with the cold faults taken before the timer starts. Each op
// is one batch of accesses, so the handful of per-call setup allocations in
// RunBatches amortize to a stable, machine-independent allocs/op that the
// bench gate holds flat. The accesses/op metric is what mehpt-bench derives
// accesses/sec from — the ISSUE 10 ≥2× throughput gate.
func BenchmarkSteadyStateTranslate(b *testing.B) {
	const batch = 8192
	for _, org := range []sim.Org{sim.Radix, sim.ECPT, sim.MEHPT} {
		org := org
		b.Run(org.String(), func(b *testing.B) {
			m, err := sim.NewMachine(sim.Config{
				Org: org, Workload: workload.Spec{Name: "steady"},
				Seed: 1, MemBytes: 4 * addr.GB,
			})
			if err != nil {
				b.Fatal(err)
			}
			// 32 resident pages, pre-expanded into a batch-aligned ring so
			// the feed is a chunk copy — the cost shape of replaying a
			// decoded binary-trace buffer, keeping the timed region about
			// the pipeline rather than the address generator.
			const resident = 32
			ring := make([]addr.VirtAddr, 1024)
			for i := range ring {
				ring[i] = workload.BaseVA + addr.VirtAddr(i%resident)*4*addr.KB
			}
			replay := func(n int) sim.Result {
				pos := 0
				return m.RunBatches(func(out []addr.VirtAddr) int {
					k := len(out)
					if k > n-pos {
						k = n - pos
					}
					p := pos % len(ring) // ring length is a multiple of every batch width
					copy(out[:k], ring[p:p+k])
					pos += k
					return k
				})
			}
			if r := replay(resident); r.Failed { // fault the set in, untimed
				b.Fatal(r.FailReason)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if r := replay(batch); r.Failed {
					b.Fatal(r.FailReason)
				}
			}
			b.ReportMetric(batch, "accesses/op")
		})
	}
}

// BenchmarkMultiTenant runs the sharded multi-core machine end to end —
// striped pool, seeded scheduler, shared-segment shootdowns — and checks
// its fingerprint stays fixed across iterations (a drifting fingerprint
// means nondeterminism, which is a correctness bug, not a perf number).
func BenchmarkMultiTenant(b *testing.B) {
	for _, org := range []sim.Org{sim.Radix, sim.MEHPT} {
		b.Run(org.String(), func(b *testing.B) {
			cfg := tenant.Config{
				Org:             org,
				Processes:       8,
				Cores:           4,
				MemBytes:        512 * addr.MB,
				FMFI:            0.7,
				Seed:            42,
				AccessesPerProc: 2000,
				Quantum:         256,
				Scale:           4096,
			}
			var fp string
			for i := 0; i < b.N; i++ {
				res, err := tenant.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if fp == "" {
					fp = res.Fingerprint
				} else if res.Fingerprint != fp {
					b.Fatal("fingerprint drifted across iterations")
				}
			}
			b.ReportMetric(float64(cfg.Processes)*float64(cfg.AccessesPerProc), "accesses/op")
		})
	}
}
