// Command mehpt-bench is the benchmark regression harness behind
// scripts/bench.sh: it converts `go test -bench -benchmem` text output into
// the committed BENCH_<n>.json format and compares two such files with a
// tolerance gate.
//
// Usage:
//
//	mehpt-bench parse -in bench.txt -out BENCH_1.json
//	mehpt-bench compare -baseline BENCH_0.json -new BENCH_1.json
//
// The compare gate distinguishes machine-dependent from machine-independent
// metrics: ns/op drifts with the host (default tolerance 15%), while
// allocs/op and B/op are properties of the code and get tight tolerances
// (defaults 1% and 10%). A comparison fails — exit status 1 — only when a
// benchmark present in both files regresses beyond its tolerance.
//
// Benchmarks reporting an accesses/op metric additionally get a derived
// accesses/sec at parse time (accesses/op ÷ seconds/op), compared as a
// first-class higher-is-better throughput gate under the ns/op tolerance —
// the metric behind ISSUE 10's ≥2× steady-state claim.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric values (e.g.
	// "mehpt-speedup-geomean"), informational only — never gated.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_<n>.json document.
type File struct {
	GoOS       string      `json:"goos"`
	GoArch     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  mehpt-bench parse   -in bench.txt -out BENCH_N.json
  mehpt-bench compare -baseline BENCH_0.json -new BENCH_N.json [-tolerance 0.15] [-alloc-tolerance 0.01] [-byte-tolerance 0.10] [-skip-time]
`)
	os.Exit(2)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mehpt-bench: "+format+"\n", args...)
	os.Exit(2)
}

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	in := fs.String("in", "-", "benchmark text output to parse ('-' = stdin)")
	out := fs.String("out", "", "JSON file to write (default stdout)")
	fs.Parse(args) //mehpt:allow errwrap -- ExitOnError flagset exits on bad flags

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}
	file, err := Parse(r)
	if err != nil {
		fatalf("%v", err)
	}
	if len(file.Benchmarks) == 0 {
		fatalf("no benchmark lines found in %s", *in)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(file); err != nil {
		fatalf("%v", err)
	}
}

// Parse reads `go test -bench` text output. Benchmark lines look like
//
//	BenchmarkFigure9  3  8511125260 ns/op  1.230 metric-name  204695128 B/op  11091 allocs/op
//
// i.e. name, iteration count, then value/unit pairs. Header lines (goos,
// goarch, pkg, cpu) fill the file metadata; everything else is ignored.
func Parse(r io.Reader) (*File, error) {
	file := &File{GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			file.GoOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			file.GoArch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			file.Package = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			file.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkX--- FAIL" noise
		}
		b := Benchmark{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: bad value %q", line, fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = val
			case "B/op":
				b.BytesPerOp = val
			case "allocs/op":
				b.AllocsPerOp = val
			case "MB/s":
				// throughput; informational
				fallthrough
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = val
			}
		}
		// Derive the throughput metric: benchmarks that report how many
		// simulated accesses one op replays get accesses/sec for free.
		if acc := b.Metrics["accesses/op"]; acc > 0 && b.NsPerOp > 0 {
			b.Metrics["accesses/sec"] = acc * 1e9 / b.NsPerOp
		}
		file.Benchmarks = append(file.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return file, nil
}

// accPerSec returns a benchmark's throughput, deriving it from accesses/op
// for files written before parse stamped accesses/sec directly.
func accPerSec(b Benchmark) float64 {
	if v := b.Metrics["accesses/sec"]; v > 0 {
		return v
	}
	if acc := b.Metrics["accesses/op"]; acc > 0 && b.NsPerOp > 0 {
		return acc * 1e9 / b.NsPerOp
	}
	return 0
}

func readFile(path string) *File {
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		fatalf("%s: %v", path, err)
	}
	return &f
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("baseline", "BENCH_0.json", "committed baseline JSON")
	newPath := fs.String("new", "", "freshly measured JSON")
	timeTol := fs.Float64("tolerance", 0.15, "allowed ns/op regression (fraction; machine-dependent metric)")
	allocTol := fs.Float64("alloc-tolerance", 0.01, "allowed allocs/op regression (fraction; machine-independent)")
	byteTol := fs.Float64("byte-tolerance", 0.10, "allowed B/op regression (fraction)")
	skipTime := fs.Bool("skip-time", false, "gate only allocs/op and B/op (for cross-machine comparisons)")
	minTime := fs.Float64("min-time-ns", 100_000, "skip the ns/op gate when both sides run faster than this (sub-threshold timings at -benchtime 1x are timer noise)")
	minRatio := fs.Float64("min-throughput-ratio", 0, "fail unless the accesses/sec geomean over matched benchmarks is at least this (0 = no floor; used to pin ISSUE 10's ≥2× claim between specific baselines)")
	fs.Parse(args) //mehpt:allow errwrap -- ExitOnError flagset exits on bad flags
	if *newPath == "" {
		fatalf("compare: -new is required")
	}

	base, cur := readFile(*basePath), readFile(*newPath)
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}

	type check struct {
		metric   string
		old, new float64
		tol      float64
	}
	regressions := 0
	var logRatioSum float64
	ratioCount := 0
	names := make([]string, 0, len(cur.Benchmarks))
	curBy := map[string]Benchmark{}
	for _, b := range cur.Benchmarks {
		names = append(names, b.Name)
		curBy[b.Name] = b
	}
	sort.Strings(names)
	for _, name := range names {
		nb := curBy[name]
		ob, ok := baseBy[name]
		if !ok {
			fmt.Printf("NEW       %-40s (no baseline entry)\n", name)
			continue
		}
		checks := []check{
			{"allocs/op", ob.AllocsPerOp, nb.AllocsPerOp, *allocTol},
			{"B/op", ob.BytesPerOp, nb.BytesPerOp, *byteTol},
		}
		if !*skipTime && (ob.NsPerOp >= *minTime || nb.NsPerOp >= *minTime) {
			checks = append(checks, check{"ns/op", ob.NsPerOp, nb.NsPerOp, *timeTol})
		}
		worst := ""
		for _, c := range checks {
			switch {
			case c.old > 0 && c.new > c.old*(1+c.tol):
				regressions++
				worst = c.metric
				fmt.Printf("REGRESSED %-40s %s %.4g -> %.4g (+%.1f%%, tolerance %.0f%%)\n",
					name, c.metric, c.old, c.new, (c.new/c.old-1)*100, c.tol*100)
			// A zero baseline that becomes nonzero is a regression for the
			// machine-independent allocation metrics (the alloc-free paths).
			case c.old == 0 && c.new > 0 && c.metric != "ns/op":
				regressions++
				worst = c.metric
				fmt.Printf("REGRESSED %-40s %s 0 -> %.4g (was allocation-free)\n", name, c.metric, c.new)
			}
		}
		// Throughput gate: accesses/sec is machine-dependent like ns/op but
		// higher-is-better, so it regresses when it FALLS past the tolerance.
		oa, na := accPerSec(ob), accPerSec(nb)
		if oa > 0 && na > 0 {
			logRatioSum += math.Log(na / oa)
			ratioCount++
		}
		if !*skipTime && oa > 0 && na > 0 && na < oa*(1-*timeTol) {
			regressions++
			worst = "accesses/sec"
			fmt.Printf("REGRESSED %-40s accesses/sec %.4g -> %.4g (%.1f%%, tolerance %.0f%%)\n",
				name, oa, na, (na/oa-1)*100, *timeTol*100)
		}
		if worst == "" {
			delta := 0.0
			if ob.NsPerOp > 0 {
				delta = (nb.NsPerOp/ob.NsPerOp - 1) * 100
			}
			line := fmt.Sprintf("ok        %-40s ns/op %+.1f%%, allocs/op %.4g", name, delta, nb.AllocsPerOp)
			if oa > 0 && na > 0 {
				line += fmt.Sprintf(", accesses/sec %.3g (%.2fx)", na, na/oa)
			}
			fmt.Println(line)
		}
	}
	for _, b := range base.Benchmarks {
		if _, ok := curBy[b.Name]; !ok {
			fmt.Printf("MISSING   %-40s (in baseline, not measured)\n", b.Name)
		}
	}
	if ratioCount > 0 {
		geomean := math.Exp(logRatioSum / float64(ratioCount))
		fmt.Printf("\nthroughput geomean: %.2fx accesses/sec over %d benchmark(s)\n", geomean, ratioCount)
		if *minRatio > 0 && geomean < *minRatio {
			fmt.Printf("throughput geomean %.2fx below required %.2fx floor\n", geomean, *minRatio)
			os.Exit(1)
		}
	} else if *minRatio > 0 {
		fatalf("compare: -min-throughput-ratio set but no benchmark reports accesses/sec in both files")
	}
	if regressions > 0 {
		fmt.Printf("\n%d regression(s) beyond tolerance vs %s\n", regressions, *basePath)
		os.Exit(1)
	}
	fmt.Printf("\nno regressions beyond tolerance vs %s\n", *basePath)
}
