// Command mehpt-trace records workload or graph-kernel address traces to
// compact trace files, converts between the two on-disk formats, and
// replays them through the simulator — the standard record-once/replay-many
// methodology of trace-driven evaluation.
//
// Two formats exist (see internal/trace): "varint", the delta-compressed
// legacy format optimizing bytes per access, and "binary", the fixed-width
// format optimizing batched decode (and the only one carrying per-process
// sections for the multi-tenant machine). Replay auto-detects the format.
//
//	mehpt-trace record -app BFS -scale 64 -accesses 1000000 -o bfs.trc
//	mehpt-trace record -kernel PR -nodes 100000 -format binary -o pr.btrc
//	mehpt-trace record -tenant -procs 8 -accesses 4096 -o tenant.btrc
//	mehpt-trace convert -i bfs.trc -o bfs.btrc
//	mehpt-trace replay -pt mehpt -i bfs.btrc
package main

import (
	"flag"
	"fmt"
	"os"

	"io"

	"repro/internal/addr"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tenant"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "convert":
		convert(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mehpt-trace record|convert|replay [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		app      = fs.String("app", "", "statistical workload to record (BC BFS ... TC)")
		kernel   = fs.String("kernel", "", "graph kernel to record instead (BC BFS CC DC DFS PR SSSP TC)")
		tenantM  = fs.Bool("tenant", false, "record per-process multi-tenant streams (sectioned binary; see -procs)")
		procs    = fs.Int("procs", 8, "process count for -tenant")
		nodes    = fs.Uint64("nodes", 100_000, "graph nodes for -kernel")
		degree   = fs.Int("degree", 16, "graph degree for -kernel")
		scale    = fs.Uint64("scale", 64, "workload scale for -app (footprint divisor for -tenant)")
		accesses = fs.Uint64("accesses", 1_000_000, "trace length for -app (per-process budget for -tenant)")
		seed     = fs.Int64("seed", 1, "seed")
		format   = fs.String("format", "varint", "output format: varint (delta-compressed) or binary (fixed-width, batch-decodable)")
		out      = fs.String("o", "out.trc", "output file")
	)
	fs.Parse(args) //mehpt:allow errwrap -- ExitOnError flagset exits on bad flags
	if *format != "varint" && *format != "binary" {
		fatal(fmt.Errorf("unknown -format %q (want varint or binary)", *format))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var n uint64
	switch {
	case *tenantM:
		// Per-process streams only exist in the sectioned binary format.
		cfg := tenant.Config{Processes: *procs, Scale: *scale, AccessesPerProc: *accesses, Seed: *seed}
		if err := tenant.RecordTraces(cfg, f); err != nil {
			fatal(err)
		}
		n = uint64(*procs) * *accesses
	case *kernel != "":
		g := graph.GenerateUniform(*nodes, *degree, *seed, workload.BaseVA)
		n, err = recordVAs(f, *format, func(emit func(addr.VirtAddr)) {
			if _, kerr := g.Run(*kernel, emit); kerr != nil {
				err = kerr
			}
		})
		if err != nil {
			fatal(err)
		}
	case *app != "":
		spec, serr := workload.ByName(*app, *scale)
		if serr != nil {
			fatal(serr)
		}
		tr := spec.NewTrace(*seed, *accesses)
		n, err = recordVAs(f, *format, func(emit func(addr.VirtAddr)) {
			for {
				va, ok := tr.Next()
				if !ok {
					return
				}
				emit(va)
			}
		})
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("need -app, -kernel, or -tenant"))
	}
	info, _ := f.Stat() //mehpt:allow errwrap -- stat on a just-written file; size 0 only garbles the summary line
	fmt.Printf("recorded %d accesses to %s (%s, %.2f bytes/access)\n",
		n, *out, stats.HumanBytes(uint64(info.Size())),
		float64(info.Size())/float64(n))
}

// recordVAs writes the generated stream in the requested format. The binary
// header carries the record count up front, so that path buffers the stream
// before writing; varint streams straight through.
func recordVAs(f *os.File, format string, gen func(emit func(addr.VirtAddr))) (uint64, error) {
	if format == "varint" {
		return trace.Record(f, gen)
	}
	var vas []addr.VirtAddr
	gen(func(va addr.VirtAddr) { vas = append(vas, va) })
	return uint64(len(vas)), trace.WriteBinaryVAs(f, vas)
}

func convert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	var (
		in = fs.String("i", "", "input trace (either format, auto-detected)")
		to = fs.String("to", "", "output format: varint or binary (default: the other format)")
		o  = fs.String("o", "", "output file")
	)
	fs.Parse(args) //mehpt:allow errwrap -- ExitOnError flagset exits on bad flags
	if *in == "" || *o == "" {
		fatal(fmt.Errorf("convert needs -i and -o"))
	}

	src, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer src.Close()
	s, err := trace.OpenStream(src)
	if err != nil {
		fatal(err)
	}
	from := "varint"
	if _, ok := s.(*trace.BinaryReader); ok {
		from = "binary"
	}
	if *to == "" {
		if from == "varint" {
			*to = "binary"
		} else {
			*to = "varint"
		}
	}

	dst, err := os.Create(*o)
	if err != nil {
		fatal(err)
	}
	defer dst.Close()

	var n uint64
	switch *to {
	case "binary":
		if br, ok := s.(*trace.BinaryReader); ok && len(br.Sections()) > 0 {
			// Re-encode preserving the per-process section table.
			if _, err := src.Seek(0, 0); err != nil {
				fatal(err)
			}
			secs, err := trace.ReadSections(src)
			if err != nil {
				fatal(err)
			}
			if err := trace.WriteBinary(dst, secs); err != nil {
				fatal(err)
			}
			for _, sec := range secs {
				n += uint64(len(sec.VAs))
			}
		} else {
			vas, err := drain(s)
			if err != nil {
				fatal(err)
			}
			if err := trace.WriteBinaryVAs(dst, vas); err != nil {
				fatal(err)
			}
			n = uint64(len(vas))
		}
	case "varint":
		if br, ok := s.(*trace.BinaryReader); ok && len(br.Sections()) > 0 {
			fmt.Fprintln(os.Stderr, "mehpt-trace: note: varint traces carry no section table; sections are concatenated in table order")
		}
		n, err = trace.Record(dst, func(emit func(addr.VirtAddr)) {
			var buf [256]addr.VirtAddr
			for {
				k, nerr := s.NextBatch(buf[:])
				for _, va := range buf[:k] {
					emit(va)
				}
				if nerr != nil {
					if nerr != io.EOF {
						err = nerr
					}
					return
				}
			}
		})
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown -to %q (want varint or binary)", *to))
	}
	fmt.Printf("converted %s (%s) -> %s (%s), %d accesses\n", *in, from, *o, *to, n)
}

// drain reads a whole stream into memory (the binary writer needs the
// record count up front).
func drain(s trace.Stream) ([]addr.VirtAddr, error) {
	var vas []addr.VirtAddr
	var buf [256]addr.VirtAddr
	for {
		n, err := s.NextBatch(buf[:])
		vas = append(vas, buf[:n]...)
		if err != nil {
			if err == io.EOF {
				return vas, nil
			}
			return nil, err
		}
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		in     = fs.String("i", "out.trc", "trace file (either format, auto-detected)")
		orgStr = fs.String("pt", "mehpt", "page-table organization: radix, ecpt, mehpt")
		memGB  = fs.Uint64("mem", 8, "physical memory (GB)")
		seed   = fs.Int64("seed", 1, "seed")
	)
	fs.Parse(args) //mehpt:allow errwrap -- ExitOnError flagset exits on bad flags

	var org sim.Org
	switch *orgStr {
	case "radix":
		org = sim.Radix
	case "ecpt":
		org = sim.ECPT
	case "mehpt":
		org = sim.MEHPT
	default:
		fatal(fmt.Errorf("unknown -pt %q", *orgStr))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	m, err := sim.NewMachine(sim.Config{
		Org: org, Workload: workload.Spec{Name: "replay"},
		Seed: *seed, MemBytes: *memGB * addr.GB,
	})
	if err != nil {
		fatal(err)
	}
	m.SetAmbientFMFI(0.7)
	s, err := trace.OpenStream(f)
	if err != nil {
		fatal(err)
	}
	res, err := m.RunStream(s)
	if err != nil {
		fatal(err)
	}
	if res.Failed {
		fatal(fmt.Errorf("replay failed: %s", res.FailReason))
	}
	fmt.Printf("%v: %d accesses, %d cycles (xlat %d, data %d, os %d)\n",
		org, res.Accesses, res.Cycles, res.XlatCycles, res.DataCycles, res.OSCycles)
	fmt.Printf("TLB walks: %d (%.1f%%), faults: %d, PT peak %s, max contig %s\n",
		res.MMU.Walks, 100*float64(res.MMU.Walks)/float64(res.MMU.Translations),
		res.OS.Faults, stats.HumanBytes(res.PTPeakBytes), stats.HumanBytes(res.MaxContiguous))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mehpt-trace:", err)
	os.Exit(1)
}
