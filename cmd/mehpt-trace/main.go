// Command mehpt-trace records workload or graph-kernel address traces to
// compact binary files and replays them through the simulator — the
// standard record-once/replay-many methodology of trace-driven evaluation.
//
//	mehpt-trace record -app BFS -scale 64 -accesses 1000000 -o bfs.trc
//	mehpt-trace record -kernel PR -nodes 100000 -o pr.trc
//	mehpt-trace replay -pt mehpt -i bfs.trc
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/addr"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mehpt-trace record|replay [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		app      = fs.String("app", "", "statistical workload to record (BC BFS ... TC)")
		kernel   = fs.String("kernel", "", "graph kernel to record instead (BC BFS CC DC DFS PR SSSP TC)")
		nodes    = fs.Uint64("nodes", 100_000, "graph nodes for -kernel")
		degree   = fs.Int("degree", 16, "graph degree for -kernel")
		scale    = fs.Uint64("scale", 64, "workload scale for -app")
		accesses = fs.Uint64("accesses", 1_000_000, "trace length for -app")
		seed     = fs.Int64("seed", 1, "seed")
		out      = fs.String("o", "out.trc", "output file")
	)
	fs.Parse(args) //mehpt:allow errwrap -- ExitOnError flagset exits on bad flags

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	var n uint64
	switch {
	case *kernel != "":
		g := graph.GenerateUniform(*nodes, *degree, *seed, workload.BaseVA)
		n, err = trace.Record(f, func(emit func(addr.VirtAddr)) {
			if _, kerr := g.Run(*kernel, emit); kerr != nil {
				err = kerr
			}
		})
	case *app != "":
		spec, serr := workload.ByName(*app, *scale)
		if serr != nil {
			fatal(serr)
		}
		tr := spec.NewTrace(*seed, *accesses)
		n, err = trace.Record(f, func(emit func(addr.VirtAddr)) {
			for {
				va, ok := tr.Next()
				if !ok {
					return
				}
				emit(va)
			}
		})
	default:
		fatal(fmt.Errorf("need -app or -kernel"))
	}
	if err != nil {
		fatal(err)
	}
	info, _ := f.Stat() //mehpt:allow errwrap -- stat on a just-written file; size 0 only garbles the summary line
	fmt.Printf("recorded %d accesses to %s (%s, %.2f bytes/access)\n",
		n, *out, stats.HumanBytes(uint64(info.Size())),
		float64(info.Size())/float64(n))
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		in     = fs.String("i", "out.trc", "trace file")
		orgStr = fs.String("pt", "mehpt", "page-table organization: radix, ecpt, mehpt")
		memGB  = fs.Uint64("mem", 8, "physical memory (GB)")
		seed   = fs.Int64("seed", 1, "seed")
	)
	fs.Parse(args) //mehpt:allow errwrap -- ExitOnError flagset exits on bad flags

	var org sim.Org
	switch *orgStr {
	case "radix":
		org = sim.Radix
	case "ecpt":
		org = sim.ECPT
	case "mehpt":
		org = sim.MEHPT
	default:
		fatal(fmt.Errorf("unknown -pt %q", *orgStr))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	m, err := sim.NewMachine(sim.Config{
		Org: org, Workload: workload.Spec{Name: "replay"},
		Seed: *seed, MemBytes: *memGB * addr.GB,
	})
	if err != nil {
		fatal(err)
	}
	m.SetAmbientFMFI(0.7)
	var replayErr error
	res := m.RunAddresses(func(emit func(addr.VirtAddr)) {
		_, replayErr = trace.Replay(f, func(va addr.VirtAddr) bool {
			emit(va)
			return true
		})
	})
	if replayErr != nil {
		fatal(replayErr)
	}
	if res.Failed {
		fatal(fmt.Errorf("replay failed: %s", res.FailReason))
	}
	fmt.Printf("%v: %d accesses, %d cycles (xlat %d, data %d, os %d)\n",
		org, res.Accesses, res.Cycles, res.XlatCycles, res.DataCycles, res.OSCycles)
	fmt.Printf("TLB walks: %d (%.1f%%), faults: %d, PT peak %s, max contig %s\n",
		res.MMU.Walks, 100*float64(res.MMU.Walks)/float64(res.MMU.Translations),
		res.OS.Faults, stats.HumanBytes(res.PTPeakBytes), stats.HumanBytes(res.MaxContiguous))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mehpt-trace:", err)
	os.Exit(1)
}
