// Command mehpt-sim runs one workload under one page-table organization
// through the full trace-driven simulator and prints the translation,
// memory, and cycle statistics. With -trace it replays a recorded trace
// file (either on-disk format, auto-detected) instead of generating the
// workload's statistical stream.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/addr"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		app      = flag.String("app", "BFS", "workload: BC BFS CC DC DFS GUPS MUMmer PR SSSP SysBench TC")
		orgStr   = flag.String("pt", "mehpt", "page-table organization: radix, ecpt, mehpt")
		scale    = flag.Uint64("scale", 1, "footprint divisor (1 = paper scale)")
		accesses = flag.Uint64("accesses", 5_000_000, "timed memory references")
		thp      = flag.Bool("thp", false, "enable transparent huge pages")
		memGB    = flag.Uint64("mem", 64, "physical memory (GB)")
		fmfi     = flag.Float64("fmfi", 0.7, "ambient fragmentation for allocation pricing")
		seed     = flag.Int64("seed", 1, "simulation seed")
		populate = flag.Bool("populate", true, "pre-fault the touched footprint before the trace")
		traceIn  = flag.String("trace", "", "replay this recorded trace file instead of generating -app's stream")
	)
	flag.Parse()

	var org sim.Org
	switch *orgStr {
	case "radix":
		org = sim.Radix
	case "ecpt":
		org = sim.ECPT
	case "mehpt":
		org = sim.MEHPT
	default:
		fmt.Fprintf(os.Stderr, "unknown -pt %q\n", *orgStr)
		os.Exit(2)
	}
	spec, err := workload.ByName(*app, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *traceIn != "" {
		// A replayed trace brings its own footprint; the populate pass only
		// knows the statistical workload's, so it does not apply.
		spec = workload.Spec{Name: "replay:" + *traceIn}
		*populate = false
	}

	m, err := sim.NewMachine(sim.Config{
		Org:      org,
		Workload: spec,
		THP:      *thp,
		Accesses: *accesses,
		Populate: *populate,
		Seed:     *seed,
		MemBytes: *memGB * addr.GB,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "machine:", err)
		os.Exit(1)
	}
	m.SetAmbientFMFI(*fmfi)
	var res sim.Result
	if *traceIn != "" {
		f, ferr := os.Open(*traceIn)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "mehpt-sim:", ferr)
			os.Exit(1)
		}
		defer f.Close()
		s, serr := trace.OpenStream(f)
		if serr != nil {
			fmt.Fprintln(os.Stderr, "mehpt-sim:", serr)
			os.Exit(1)
		}
		res, err = m.RunStream(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mehpt-sim:", err)
			os.Exit(1)
		}
	} else {
		res = m.Run()
	}

	fmt.Printf("%s on %v (THP=%v, scale=%d)\n", spec.Name, org, *thp, *scale)
	if res.Failed {
		fmt.Printf("RUN FAILED: %s\n", res.FailReason)
	}
	fmt.Printf("\ntrace: %d accesses\n", res.Accesses)
	fmt.Printf("  translation cycles: %d\n", res.XlatCycles)
	fmt.Printf("  data cycles:        %d\n", res.DataCycles)
	fmt.Printf("  OS fault cycles:    %d\n", res.OSCycles)
	fmt.Printf("\nMMU:\n")
	fmt.Printf("  translations: %d  L1 TLB hits: %d  L2 hits: %d  walks: %d  faults: %d\n",
		res.MMU.Translations, res.MMU.L1Hits, res.MMU.L2Hits, res.MMU.Walks, res.MMU.Faults)
	if res.MMU.Walks > 0 {
		fmt.Printf("  avg walk latency: %.1f cycles\n",
			float64(res.MMU.WalkCycles)/float64(res.MMU.Walks))
	}
	fmt.Printf("\nOS:\n")
	fmt.Printf("  faults: %d (huge: %d)  data-alloc cycles: %d  PT cycles: %d\n",
		res.OS.Faults, res.OS.HugeFaults, res.OS.DataAllocCycles, res.OS.PTCycles)
	fmt.Printf("\npage table:\n")
	fmt.Printf("  peak memory:     %s\n", stats.HumanBytes(res.PTPeakBytes))
	fmt.Printf("  final memory:    %s\n", stats.HumanBytes(res.PTFinalBytes))
	fmt.Printf("  max contiguous:  %s\n", stats.HumanBytes(res.MaxContiguous))
	fmt.Printf("  alloc cycles:    %d\n", res.PTAllocCycles)
	fmt.Printf("  entries moved:   %d\n", res.PTMoves)
	if res.Failed {
		os.Exit(1)
	}
}
