// Command mehpt-inspect populates an ME-HPT with a workload's footprint and
// dumps its internal state: per-way sizes, chunk lists, L2P occupancy,
// resize history, and the re-insertion distribution — the raw material of
// the paper's Figures 11-16.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/addr"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		app   = flag.String("app", "GUPS", "workload to populate with")
		scale = flag.Uint64("scale", 1, "footprint divisor")
		thp   = flag.Bool("thp", false, "enable transparent huge pages")
		memGB = flag.Uint64("mem", 64, "physical memory (GB)")
		seed  = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	spec, err := workload.ByName(*app, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	m, err := sim.NewMachine(sim.Config{
		Org: sim.MEHPT, Workload: spec, THP: *thp, Populate: true,
		Seed: *seed, MemBytes: *memGB * addr.GB,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "machine:", err)
		os.Exit(1)
	}
	m.SetAmbientFMFI(0.7)
	res := m.Run()
	if res.Failed {
		fmt.Printf("population FAILED: %s\n", res.FailReason)
		os.Exit(1)
	}
	pt := res.MEHPT

	fmt.Printf("ME-HPT state after populating %s (touched %s, THP=%v)\n\n",
		spec.Name, stats.HumanBytes(spec.TouchedBytes), *thp)
	for _, s := range addr.Sizes() {
		t := pt.Table(s)
		if t == nil { // size tables are created lazily on first mapping
			fmt.Printf("[%v page table] never instantiated\n\n", s)
			continue
		}
		st := t.Stats()
		fmt.Printf("[%v page table]\n", s)
		fmt.Printf("  clustered entries: %d\n", t.Len())
		sizes := t.WaySizes()
		chunks := t.WayChunkBytes()
		for w := range sizes {
			fmt.Printf("  way %d: %8s (%d slots), chunk size %s, %d upsizes\n",
				w, stats.HumanBytes(sizes[w]*64), sizes[w],
				stats.HumanBytes(chunks[w]), st.UpsizesPerWay[w])
		}
		fmt.Printf("  footprint: %s  transitions: %d  downsizes: %d\n",
			stats.HumanBytes(t.FootprintBytes()), st.Transitions, st.Downsizes)
		if tot := st.UpsizeMoved + st.UpsizeStayed; tot > 0 {
			fmt.Printf("  in-place rehash: %d moved / %d stayed (%.2f moved)\n",
				st.UpsizeMoved, st.UpsizeStayed, float64(st.UpsizeMoved)/float64(tot))
		}
		if st.Reinsertions.Total() > 0 {
			fmt.Printf("  re-insertions: mean %.2f, dist %s\n",
				st.Reinsertions.Mean(), st.Reinsertions.String())
		}
		fmt.Println()
	}
	l2p := pt.L2P()
	fmt.Printf("[L2P table]\n")
	fmt.Printf("  capacity: %d entries (%.2fKB of MMU state)\n",
		l2p.TotalEntries(), l2p.SizeBytes()/1024)
	fmt.Printf("  in use: %d  peak: %d\n", l2p.TotalUsed(), l2p.PeakUsed())
	for w := 0; w < l2p.Ways(); w++ {
		fmt.Printf("  way %d: 4KB=%d 2MB=%d 1GB=%d (limits %d/%d/%d)\n", w,
			l2p.Used(w, addr.Page4K), l2p.Used(w, addr.Page2M), l2p.Used(w, addr.Page1G),
			l2p.Limit(w, addr.Page4K), l2p.Limit(w, addr.Page2M), l2p.Limit(w, addr.Page1G))
	}
	fmt.Printf("\n[totals] PT peak %s, max contiguous alloc %s\n",
		stats.HumanBytes(res.PTPeakBytes), stats.HumanBytes(res.MaxContiguous))
}
