// Command mehpt-experiments regenerates every table and figure in the
// paper's evaluation. Run with -exp all (default) or a comma-separated
// subset: table1,table2,alloccost,frag,fig8,fig9,fig10,fig11,fig12,fig13,
// fig14,fig15,fig16.
//
// -scale 1 is the paper's full configuration (takes minutes); larger scales
// divide every footprint for quick looks.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/addr"
	"repro/internal/experiments"
)

func main() {
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiments to run, or 'all' (table1,table2,alloccost,frag,fivelevel,virt,fig8..fig16)")
		scale    = flag.Uint64("scale", 1, "footprint divisor (1 = paper's full scale)")
		accesses = flag.Uint64("accesses", 30_000_000, "timed trace length for fig9")
		memGB    = flag.Uint64("mem", 64, "simulated physical memory (GB)")
		fmfi     = flag.Float64("fmfi", 0.7, "ambient memory fragmentation (FMFI)")
		seed     = flag.Int64("seed", 42, "simulation seed")
	)
	flag.Parse()

	o := experiments.DefaultOptions()
	o.Scale = *scale
	o.TimedAccesses = *accesses
	o.MemBytes = *memGB * addr.GB
	o.FMFI = *fmfi
	o.Seed = *seed

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	run := func(name string, f func()) {
		if !all && !want[name] {
			return
		}
		start := time.Now()
		f()
		fmt.Printf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	w := os.Stdout
	fmt.Printf("ME-HPT experiment suite (scale=%d, fmfi=%.1f, mem=%dGB)\n\n",
		o.Scale, o.FMFI, o.MemBytes/addr.GB)

	run("table2", func() { experiments.FprintTable2(w, experiments.Table2()) })
	run("fivelevel", func() {
		mo := o
		if mo.Scale == 1 {
			mo.Scale = 8 // walk-latency averages converge fast; keep it quick
		}
		mo.TimedAccesses = 2_000_000
		experiments.FprintFiveLevel(w, experiments.FiveLevelMotivation(mo))
	})
	run("virt", func() {
		experiments.FprintVirtualization(w, experiments.Virtualization(o, 256))
	})
	run("alloccost", func() { experiments.FprintAllocCost(w, o.FMFI, experiments.AllocCost(o.FMFI)) })
	run("frag", func() {
		experiments.FprintFragmentationStress(w,
			experiments.RunFragmentationStress(o.MemBytes/8, o.Seed))
	})
	run("table1", func() { experiments.FprintTable1(w, experiments.Table1(o)) })
	run("fig8", func() { experiments.FprintFigure8(w, experiments.Figure8(o)) })
	run("fig10", func() { experiments.FprintFigure10(w, experiments.Figure10(o)) })
	run("fig11", func() { experiments.FprintFigure11(w, experiments.Figure11(o)) })
	run("fig12", func() { experiments.FprintFigure12(w, experiments.Figure12(o)) })
	run("fig13", func() { experiments.FprintFigure13(w, experiments.Figure13(o)) })
	run("fig14", func() { experiments.FprintFigure14(w, experiments.Figure14(o)) })
	run("fig15", func() { experiments.FprintFigure15(w, experiments.Figure15(o)) })
	run("fig16", func() {
		rows, mean := experiments.Figure16(o)
		experiments.FprintFigure16(w, rows, mean)
	})
	run("fig9", func() { experiments.FprintFigure9(w, experiments.Figure9(o)) })
}
