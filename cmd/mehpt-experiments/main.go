// Command mehpt-experiments regenerates every table and figure in the
// paper's evaluation. Run with -exp all (default) or a comma-separated
// subset: table1,table2,alloccost,frag,multitenant,fig8,fig9,fig10,fig11,
// fig12,fig13,fig14,fig15,fig16.
//
// -exp multitenant runs the sharded multi-core machine over the -cores ×
// -processes matrix (comma lists) for every page-table organization. The
// machine's canonical fingerprint depends only on the organization, the
// process count, and the seed — never on -cores or -parallel — and the
// driver exits non-zero if any cell violates that contract.
//
// -scale 1 is the paper's full configuration (takes minutes); larger scales
// divide every footprint for quick looks.
//
// The run matrix of each experiment fans out over -parallel workers
// (default: GOMAXPROCS). Results are bit-identical at every worker count:
// each run derives its RNG seed from its identity, so -parallel only
// changes wall-clock time, never numbers. -progress prints one line per
// completed run with its wall-clock duration; -json writes every driver's
// typed rows to a machine-readable file.
//
// -inject attaches a deterministic allocation-failure policy (see
// internal/inject) to every run's physical allocator, exercising the
// degradation ladder under memory pressure; failed jobs are summarized per
// job at the end (and under "job_failures" in -json output) and make the
// process exit non-zero. -fail-fast aborts the remaining jobs of a matrix
// after the first failure (at the cost of run-to-run determinism).
//
// Crash consistency and recovery (see DESIGN.md):
//
//   - -checkpoint writes an atomic, checksummed snapshot of every
//     multitenant machine after each completed round, one file per job
//     (<path>.<org>.p<procs>.c<cores>); -resume continues each job from its
//     snapshot when one exists. A resumed run's fingerprint is bit-identical
//     to the uninterrupted run's.
//   - -chaos runs the deterministic kill → recover → fingerprint-compare
//     harness at the given kill plan (e.g. "remap.after:2", see
//     inject.ParseKill) for every multitenant cell; a recovery that does not
//     reproduce the baseline fingerprint exits non-zero. Requires
//     -checkpoint.
//   - -scrub runs the cross-layer invariant scrubber (internal/scrub) on
//     every finished or recovered machine; any violation exits non-zero.
//   - -timeout bounds the whole suite: once it expires, multitenant
//     machines stop at their next round boundary, flush a final checkpoint,
//     and the partial summary is printed before exiting with code 3.
//
// Exit codes: 0 success, 1 failures (jobs, determinism, chaos, or scrub),
// 2 usage, 3 suite timeout with partial results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/addr"
	"repro/internal/experiments"
	"repro/internal/inject"
	"repro/internal/stats"
)

func main() {
	var (
		expFlag    = flag.String("exp", "all", "comma-separated experiments to run, or 'all' (table1,table2,alloccost,frag,fivelevel,virt,multitenant,fig8..fig16)")
		scale      = flag.Uint64("scale", 1, "footprint divisor (1 = paper's full scale)")
		accesses   = flag.Uint64("accesses", 30_000_000, "timed trace length for fig9")
		memGB      = flag.Uint64("mem", 64, "simulated physical memory (GB)")
		fmfi       = flag.Float64("fmfi", 0.7, "ambient memory fragmentation (FMFI)")
		seed       = flag.Int64("seed", 42, "simulation seed")
		parallel   = flag.Int("parallel", 0, "worker count for independent runs (0 = GOMAXPROCS, 1 = serial)")
		progress   = flag.Bool("progress", true, "print per-run wall-clock timing as the matrix executes")
		jsonOut    = flag.String("json", "", "write machine-readable results (all experiment rows) to this file")
		injectSpec = flag.String("inject", "", "fault-injection policy for every run's allocator, e.g. 'nth=50', 'rate=0.01+pressure=0.9' (see internal/inject)")
		coresFlag  = flag.String("cores", "1,2,4,8", "comma-separated simulated core counts for the multitenant matrix")
		procsFlag  = flag.String("processes", "8", "comma-separated simulated process counts for the multitenant matrix")
		failFast   = flag.Bool("fail-fast", false, "abort each experiment's remaining jobs after the first failure (forfeits worker-count determinism)")
		ckptPath   = flag.String("checkpoint", "", "base path for per-round multitenant checkpoints (one file per job: <path>.<org>.p<procs>.c<cores>)")
		resume     = flag.Bool("resume", false, "resume multitenant jobs from their -checkpoint snapshots when present")
		scrubFlag  = flag.Bool("scrub", false, "run the cross-layer invariant scrubber on every multitenant machine; violations exit non-zero")
		chaosPlan  = flag.String("chaos", "", "kill plan for the multitenant crash-consistency harness, e.g. 'remap.after:2' (see inject.ParseKill); requires -checkpoint")
		tenantTrc  = flag.String("tenant-trace", "", "base path for recorded multitenant access streams (<path>.<org>.p<procs>.btrc); cells record once, then replay")
		timeout    = flag.Duration("timeout", 0, "suite deadline; on expiry machines stop at a round boundary, flush checkpoints, and the process exits 3")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the suite run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof allocation profile (alloc_space) to this file at exit")
		traceFile  = flag.String("trace", "", "write a runtime execution trace of the suite run to this file")
	)
	flag.Parse()

	// Profiling hooks. The deferred stops run through exitf below, so they
	// fire on every exit path, including failure summaries.
	var atExit []func()
	exitf := func(code int) {
		for i := len(atExit) - 1; i >= 0; i-- {
			atExit[i]()
		}
		os.Exit(code)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mehpt-experiments: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mehpt-experiments: -cpuprofile: %v\n", err)
			os.Exit(2)
		}
		atExit = append(atExit, func() { pprof.StopCPUProfile(); f.Close() }) //mehpt:allow errwrap -- close at exit; profile loss is visible to the operator
	}
	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mehpt-experiments: -trace: %v\n", err)
			os.Exit(2)
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "mehpt-experiments: -trace: %v\n", err)
			os.Exit(2)
		}
		atExit = append(atExit, func() { trace.Stop(); f.Close() }) //mehpt:allow errwrap -- close at exit; trace loss is visible to the operator
	}
	if *memProfile != "" {
		path := *memProfile
		atExit = append(atExit, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mehpt-experiments: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "mehpt-experiments: -memprofile: %v\n", err)
			}
		})
	}

	if *injectSpec != "" {
		// Validate the spec up front so a typo fails before minutes of runs.
		if _, err := inject.Parse(*injectSpec, 0); err != nil {
			fmt.Fprintf(os.Stderr, "mehpt-experiments: -inject: %v\n", err)
			exitf(2)
		}
	}
	if *chaosPlan != "" {
		if _, err := inject.ParseKill(*chaosPlan); err != nil {
			fmt.Fprintf(os.Stderr, "mehpt-experiments: -chaos: %v\n", err)
			exitf(2)
		}
		if *ckptPath == "" {
			fmt.Fprintln(os.Stderr, "mehpt-experiments: -chaos requires -checkpoint (the recovery snapshot path)")
			exitf(2)
		}
	}
	if *resume && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "mehpt-experiments: -resume requires -checkpoint")
		exitf(2)
	}
	suiteCtx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		suiteCtx, cancel = context.WithTimeout(suiteCtx, *timeout)
		atExit = append(atExit, cancel)
	}

	// Axis lists for the multitenant matrix.
	parseAxis := func(name, spec string) []int {
		var out []int
		for _, s := range strings.Split(spec, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "mehpt-experiments: -%s: %q is not a positive integer\n", name, s)
				exitf(2)
			}
			out = append(out, n)
		}
		return out
	}
	coreAxis := parseAxis("cores", *coresFlag)
	procAxis := parseAxis("processes", *procsFlag)

	failures := &experiments.FailureLog{}
	o := experiments.DefaultOptions()
	o.Scale = *scale
	o.TimedAccesses = *accesses
	o.MemBytes = *memGB * addr.GB
	o.FMFI = *fmfi
	o.Seed = *seed
	o.Parallel = *parallel
	o.Inject = *injectSpec
	o.FailFast = *failFast
	o.Failures = failures
	o.Checkpoint = *ckptPath
	o.Resume = *resume
	o.Scrub = *scrubFlag
	o.Chaos = *chaosPlan
	o.TenantTrace = *tenantTrc
	o.Ctx = suiteCtx
	var tally atomic.Uint64
	o.AccessTally = &tally
	meter := stats.NewAllocMeter()
	suiteStart := time.Now()
	if *progress {
		// Called concurrently from the worker pool; a single Printf is
		// atomic enough for line-oriented progress output.
		o.Progress = func(done, total int, label string, elapsed time.Duration, accesses uint64) {
			rate := ""
			if accesses > 0 && elapsed > 0 {
				rate = fmt.Sprintf("%8.2fM acc/s",
					float64(accesses)/elapsed.Seconds()/1e6)
			}
			fmt.Printf("  [%3d/%3d] %-32s %10s %s\n", done, total, label,
				elapsed.Round(time.Millisecond), rate)
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	delete(want, "all")
	var rec stats.Recorder
	run := func(name string, f func() any) {
		known := want[name]
		delete(want, name) // leftovers are unknown names; reported after the suite
		if !all && !known {
			return
		}
		start := time.Now()
		o.Name = name // labels this experiment's failure records (f reads o)
		rows := f()
		if rows != nil {
			rec.Record(name, rows)
		}
		fmt.Printf("[%s took %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	w := os.Stdout
	fmt.Printf("ME-HPT experiment suite (scale=%d, fmfi=%.1f, mem=%dGB, parallel=%d)\n\n",
		o.Scale, o.FMFI, o.MemBytes/addr.GB, *parallel)

	run("table2", func() any {
		rows := experiments.Table2()
		experiments.FprintTable2(w, rows)
		return rows
	})
	run("fivelevel", func() any {
		mo := o
		if mo.Scale == 1 {
			mo.Scale = 8 // walk-latency averages converge fast; keep it quick
		}
		mo.TimedAccesses = 2_000_000
		rows := experiments.FiveLevelMotivation(mo)
		experiments.FprintFiveLevel(w, rows)
		return rows
	})
	run("virt", func() any {
		rows := experiments.Virtualization(o, 256)
		experiments.FprintVirtualization(w, rows)
		return rows
	})
	run("alloccost", func() any {
		rows := experiments.AllocCost(o.FMFI)
		experiments.FprintAllocCost(w, o.FMFI, rows)
		return rows
	})
	run("frag", func() any {
		rows := experiments.RunFragmentationStress(o.MemBytes/8, o.Seed)
		experiments.FprintFragmentationStress(w, rows)
		return rows
	})
	run("multitenant", func() any {
		rows := experiments.MultiTenant(o, coreAxis, procAxis)
		experiments.FprintMultiTenant(w, rows)
		if bad := experiments.MultiTenantFingerprintsAgree(rows); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "mehpt-experiments: multitenant determinism violation at %s\n",
				strings.Join(bad, ", "))
			exitf(1)
		}
		if bad := experiments.MultiTenantChaosOK(rows); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "mehpt-experiments: crash-consistency violation (recovery fingerprint diverges) at %s\n",
				strings.Join(bad, ", "))
			exitf(1)
		}
		if bad := experiments.MultiTenantScrubClean(rows); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "mehpt-experiments: invariant scrub violation at %s\n",
				strings.Join(bad, ", "))
			exitf(1)
		}
		return rows
	})
	run("table1", func() any {
		rows := experiments.Table1(o)
		experiments.FprintTable1(w, rows)
		return rows
	})
	run("fig8", func() any {
		rows := experiments.Figure8(o)
		experiments.FprintFigure8(w, rows)
		return rows
	})
	run("fig10", func() any {
		rows := experiments.Figure10(o)
		experiments.FprintFigure10(w, rows)
		return rows
	})
	run("fig11", func() any {
		rows := experiments.Figure11(o)
		experiments.FprintFigure11(w, rows)
		return rows
	})
	run("fig12", func() any {
		rows := experiments.Figure12(o)
		experiments.FprintFigure12(w, rows)
		return rows
	})
	run("fig13", func() any {
		rows := experiments.Figure13(o)
		experiments.FprintFigure13(w, rows)
		return rows
	})
	run("fig14", func() any {
		rows := experiments.Figure14(o)
		experiments.FprintFigure14(w, rows)
		return rows
	})
	run("fig15", func() any {
		rows := experiments.Figure15(o)
		experiments.FprintFigure15(w, rows)
		return rows
	})
	run("fig16", func() any {
		rows, mean := experiments.Figure16(o)
		experiments.FprintFigure16(w, rows, mean)
		return struct {
			Rows []experiments.Figure16Row `json:"rows"`
			Mean float64                   `json:"mean"`
		}{rows, mean}
	})
	run("fig9", func() any {
		rows := experiments.Figure9(o)
		experiments.FprintFigure9(w, rows)
		return rows
	})

	if len(want) > 0 {
		var unknown []string
		for name := range want {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		fmt.Fprintf(os.Stderr, "mehpt-experiments: unknown experiment(s): %s (see -exp in -help)\n",
			strings.Join(unknown, ", "))
		exitf(1)
	}

	if failures.Len() > 0 {
		rec.Record("job_failures", failures.Failures())
	}

	// Suite-level throughput and allocation meter. The alloc counter is
	// process-wide (runtime/metrics), so it includes table construction and
	// reporting — a coarse regression signal, with the per-path precision
	// left to the AllocsPerRun test guards. Not recorded into -json: its
	// values are machine-dependent and the JSON output is fingerprinted.
	if total := tally.Load(); total > 0 {
		elapsed := time.Since(suiteStart)
		fmt.Printf("simulated %d accesses in %s (%.2fM acc/s, %.2f heap allocs/access)\n",
			total, elapsed.Round(time.Millisecond),
			float64(total)/elapsed.Seconds()/1e6, meter.PerAccess(total))
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mehpt-experiments: %v\n", err)
			exitf(1)
		}
		if err := rec.WriteJSON(f); err == nil {
			err = f.Close()
			if err == nil {
				fmt.Printf("wrote JSON results to %s\n", *jsonOut)
			}
		} else {
			f.Close() //mehpt:allow errwrap -- already failing; the write error below is the one reported
			fmt.Fprintf(os.Stderr, "mehpt-experiments: writing %s: %v\n", *jsonOut, err)
			exitf(1)
		}
	}

	if n := failures.Len(); n > 0 {
		fmt.Fprintf(os.Stderr, "\n%d job(s) failed:\n", n)
		for _, jf := range failures.Failures() {
			kind := ""
			if jf.Panicked {
				kind = " [panic]"
			}
			fmt.Fprintf(os.Stderr, "  %s: %s%s: %s\n", jf.Experiment, jf.Job, kind, jf.Reason)
		}
		exitf(1)
	}
	if errors.Is(suiteCtx.Err(), context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "mehpt-experiments: suite deadline (%v) expired; partial results above, checkpoints flushed\n", *timeout)
		exitf(3)
	}
	exitf(0)
}
