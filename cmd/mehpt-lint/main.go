// Command mehpt-lint is the multichecker for the repository's custom
// analyzers (internal/analysis/...): the determinism and unit-safety
// invariants from DESIGN.md, enforced mechanically. CI runs it as a
// blocking job; run it locally with
//
//	go run ./cmd/mehpt-lint ./...
//
// Findings print as file:line:col: message and make the process exit 1;
// -json switches the report to a machine-readable object on stdout for
// editor and CI integrations: {"findings": [...], "analyzers": [...]},
// where each analyzers entry carries the per-analyzer finding count, the
// number of diagnostics a //mehpt:allow directive suppressed, and wall
// time in milliseconds (see README.md § mehpt-lint for the full schema).
// Exit codes are part of the interface:
//
//	0  no findings
//	1  findings reported
//	2  usage error or package load failure
//
// Waive a legitimate finding with a directive on or directly above the
// flagged line:
//
//	//mehpt:allow <analyzer>[,<analyzer>] -- <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

func main() {
	listFlag := flag.Bool("list", false, "list the analyzers and exit")
	onlyFlag := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
	jsonFlag := flag.Bool("json", false, "report findings as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: mehpt-lint [-list] [-json] [-analyzers a,b] [packages]\n\n"+
				"Runs the ME-HPT determinism/unit-safety analyzers over the given\n"+
				"package patterns (default ./...).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := suite.All()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *onlyFlag != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*onlyFlag, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "mehpt-lint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := analysis.FindModule(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "mehpt-lint: %v\n", err)
		os.Exit(2)
	}
	diags, loader, metrics, err := analysis.Lint(mod, patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mehpt-lint: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd() //mehpt:allow errwrap -- empty cwd falls back to absolute paths
	type finding struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Message  string `json:"message"`
	}
	findings := make([]finding, 0, len(diags))
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		findings = append(findings, finding{d.Analyzer, name, pos.Line, pos.Column, d.Message})
	}
	if *jsonFlag {
		type analyzerStats struct {
			Name       string  `json:"name"`
			Findings   int     `json:"findings"`
			Suppressed int     `json:"suppressed"`
			ElapsedMS  float64 `json:"elapsed_ms"`
		}
		report := struct {
			Findings  []finding       `json:"findings"`
			Analyzers []analyzerStats `json:"analyzers"`
		}{Findings: findings}
		for _, m := range metrics {
			report.Analyzers = append(report.Analyzers, analyzerStats{
				Name:       m.Name,
				Findings:   m.Findings,
				Suppressed: m.Suppressed,
				ElapsedMS:  float64(m.Elapsed.Microseconds()) / 1000,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "mehpt-lint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			// Analyzer messages already name their rule; keep the line format
			// one-diagnostic-per-line for editors and CI annotations.
			fmt.Printf("%s:%d:%d: %s\n", f.File, f.Line, f.Col, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mehpt-lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
