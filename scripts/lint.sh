#!/usr/bin/env bash
# lint.sh — run the repo's own analyzer suite exactly the way CI gates on
# it, so "works locally, fails in CI" cannot happen for lint.
#
# The suite (internal/analysis, see DESIGN.md § "Mechanically enforced
# invariants" and § "Snapshot completeness & determinism taint") checks
# determinism, unit safety, lock discipline, hot-path allocation, error
# wrapping, snapshot completeness (statecover), nondeterminism taint
# reaching fingerprint/stats/snapshot sinks (detflow), and stale
# //mehpt:allow waivers (staleallow).
#
# Environment knobs:
#   LINT_JSON  set to a path to also write the machine-readable report
#              (per-analyzer findings / suppressed counts / wall time)
#   LINT_PKGS  package patterns to lint (default: ./...) — note that
#              subsetting skips the whole-module waiver audit guarantees
#
# Exit status mirrors mehpt-lint: 0 clean, 1 findings, 2 load error.
set -u
cd "$(dirname "$0")/.."

pkgs=${LINT_PKGS:-./...}

if [[ -n ${LINT_JSON:-} ]]; then
    go run ./cmd/mehpt-lint -json "$pkgs" >"$LINT_JSON"
    status=$?
    # The JSON report goes to the file; re-print findings for humans.
    if [[ $status -eq 1 ]]; then
        go run ./cmd/mehpt-lint "$pkgs"
    fi
    exit $status
fi

exec go run ./cmd/mehpt-lint "$pkgs"
