#!/usr/bin/env bash
# bench.sh — run the tier-2 benchmark suite with -benchmem, emit BENCH_<n>.json,
# and gate against the committed baseline (BENCH_1.json, recorded with the
# batched translation pipeline; BENCH_0.json is the pre-batching scalar
# baseline kept for the ISSUE 10 ≥2× throughput comparison).
#
# Environment knobs:
#   BENCH      benchmark regexp passed to -bench        (default: .)
#   BENCHTIME  passed to -benchtime                     (default: 1x)
#   COUNT      passed to -count                         (default: 1)
#   OUT        output JSON path (default: next free BENCH_<n>.json)
#   BASELINE   baseline to compare against              (default: BENCH_1.json)
#   TOLERANCE  allowed ns/op regression fraction        (default: 0.15)
#   SKIP_TIME  set to 1 to gate only allocs/op and B/op (cross-machine runs)
#
# Exit status is nonzero when the comparison finds a regression beyond
# tolerance, which is what the CI bench job keys off.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-.}"
BENCHTIME="${BENCHTIME:-1x}"
COUNT="${COUNT:-1}"
BASELINE="${BASELINE:-BENCH_1.json}"
TOLERANCE="${TOLERANCE:-0.15}"

if [ -z "${OUT:-}" ]; then
  n=0
  while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
  OUT="BENCH_${n}.json"
fi

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "== running benchmarks (-bench '$BENCH' -benchtime $BENCHTIME -count $COUNT)"
go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" \
  -count "$COUNT" -timeout 60m . | tee "$tmp"

go run ./cmd/mehpt-bench parse -in "$tmp" -out "$OUT"
echo "== wrote $OUT"

if [ "$OUT" != "$BASELINE" ] && [ -e "$BASELINE" ]; then
  echo "== comparing against $BASELINE (ns/op tolerance ${TOLERANCE})"
  extra=()
  if [ "${SKIP_TIME:-0}" = "1" ]; then
    extra+=(-skip-time)
  fi
  go run ./cmd/mehpt-bench compare -baseline "$BASELINE" -new "$OUT" \
    -tolerance "$TOLERANCE" "${extra[@]}"
else
  echo "== no baseline comparison ($OUT is the baseline or $BASELINE missing)"
fi
